//! CI throughput smoke test: runs the paper's extended scheme matrix
//! through each execution path and fails if the single-pass engine is
//! slower than the legacy serial path — the engine's per-reference work
//! is identical, so a slowdown means a structural regression (an extra
//! pass over the trace, a per-reference allocation), never tuning drift.
//!
//! Usage: `throughput_smoke [refs_per_trace] [--metrics-json <path>]`
//! (default 100 000 references per trace)
//!
//! Prints one row per mode with wall time, engine steps per second
//! (references × schemes), and speedup over serial. The sharded row is
//! informational: its speedup depends on the core count of the machine,
//! so it warns rather than fails when it loses to single-pass.
//!
//! `--metrics-json` records the measured timings (`smoke_best_seconds`,
//! `steps_per_sec` per mode, `smoke_best_ratio`) as JSON lines after the
//! gate's measurements complete, so exporting never perturbs the timing.

use std::process::ExitCode;
use std::time::Instant;

use dirsim::obs::{MetricsRegistry, Recorder, RunManifest};
use dirsim::{ExecutionMode, Experiment, ExperimentResults};

/// Floor on measured wall time. Coarse clocks (or an absurdly small ref
/// count) can report 0 elapsed seconds; dividing by the floor instead
/// keeps rates and paired ratios finite.
const MIN_SECS: f64 = 1e-9;

fn steps_of(results: &ExperimentResults) -> u64 {
    results.per_scheme.iter().map(|s| s.combined.refs).sum()
}

fn timed(exp: &Experiment, mode: ExecutionMode) -> Result<(f64, u64), dirsim::Error> {
    let start = Instant::now();
    let results = exp.run_with(mode)?;
    Ok((
        start.elapsed().as_secs_f64().max(MIN_SECS),
        steps_of(&results),
    ))
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut refs: usize = 100_000;
    let mut metrics_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-json" => {
                i += 1;
                metrics_json = Some(args.get(i).ok_or("--metrics-json requires a path")?.clone());
            }
            other => {
                refs = other.parse().map_err(|_| {
                    format!(
                        "unknown argument {other}; usage: throughput_smoke \
                         [refs_per_trace] [--metrics-json <path>]"
                    )
                })?;
            }
        }
        i += 1;
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let exp = dirsim::paper::extended_experiment(refs);
    println!(
        "throughput smoke: {} workloads x {} schemes at {refs} refs/trace ({workers} cores)",
        exp.workload_count(),
        exp.scheme_count(),
    );

    let modes = [
        ("serial", ExecutionMode::Serial),
        ("single-pass", ExecutionMode::SinglePass),
        ("sharded", ExecutionMode::Sharded { workers }),
    ];

    // Shared-runner noise is bursty, so unpaired timings are useless: a
    // slow patch of machine can double any individual measurement. Each
    // round times all three modes back-to-back and the gate looks at
    // per-round *ratios* (adjacent measurements see the same machine
    // conditions), judging single-pass by its best round.
    const ROUNDS: usize = 5;
    let started = Instant::now();
    exp.run_with(ExecutionMode::SinglePass)?;
    let mut best = [f64::INFINITY; 3];
    let mut steps = [0u64; 3];
    let mut best_ratio = 0.0f64;
    for _ in 0..ROUNDS {
        let mut round = [MIN_SECS; 3];
        for (i, &(_, mode)) in modes.iter().enumerate() {
            let (secs, n) = timed(&exp, mode)?;
            round[i] = secs;
            best[i] = best[i].min(secs);
            steps[i] = n;
        }
        // timed() clamps to MIN_SECS, so the ratio is always finite.
        best_ratio = best_ratio.max(round[0] / round[1]);
    }

    let mut rates = Vec::new();
    println!(
        "{:>12} {:>9} {:>14} {:>9}",
        "mode", "seconds", "steps/sec", "vs serial"
    );
    for (i, (label, _)) in modes.iter().enumerate() {
        let rate = steps[i] as f64 / best[i];
        let speedup = rates.first().map_or(1.0, |&(_, r)| rate / r);
        println!("{label:>12} {:>9.2} {rate:>14.0} {speedup:>8.2}x", best[i]);
        rates.push((label, rate));
    }

    // Export after every measurement so recording can't perturb the gate.
    if let Some(path) = &metrics_json {
        let registry = MetricsRegistry::new();
        for (i, (label, _)) in modes.iter().enumerate() {
            let labels = [("mode", *label)];
            registry.gauge("smoke_best_seconds", &labels, best[i]);
            registry.gauge("steps_per_sec", &labels, steps[i] as f64 / best[i]);
        }
        registry.gauge("smoke_best_ratio", &[], best_ratio);
        let manifest = RunManifest::new("throughput_smoke")
            .schemes(dirsim::paper::extended_schemes().iter().map(|s| s.name()))
            .mode("paired-rounds")
            .trace("synth:paper-workloads")
            .refs(refs as u64)
            .wall_secs(started.elapsed().as_secs_f64())
            .extra("rounds", &ROUNDS.to_string())
            .extra("workers", &workers.to_string());
        dirsim::obs::write_jsonl_file(std::path::Path::new(path), &manifest, &registry)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }

    // 10% guard band on the best paired round: a real regression slows
    // every round well past this; noise does not slow all five.
    if best_ratio < 0.90 {
        eprintln!(
            "FAIL: single-pass never reached serial throughput \
             (best round {best_ratio:.2}x serial)"
        );
        return Ok(ExitCode::FAILURE);
    }
    let (single_pass, sharded) = (rates[1].1, rates[2].1);
    if workers > 1 && sharded < single_pass {
        eprintln!(
            "warning: sharded ({sharded:.0} steps/sec) did not beat single-pass \
             ({single_pass:.0} steps/sec) on this machine"
        );
    }
    println!("OK: single-pass best round is {best_ratio:.2}x serial");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(err) => {
            dirsim_bench::report_error("throughput_smoke", err.as_ref());
            ExitCode::FAILURE
        }
    }
}
