//! CI perf-trajectory gate: compares a fresh `throughput_smoke
//! --bench-json` record against the committed baseline snapshot
//! (`BENCH_throughput.json`) and fails when any throughput metric drops
//! below the floor ratio.
//!
//! Usage: `bench_gate <baseline.json> <current.json> [--min-ratio 0.85]`
//!
//! Every `*_steps_per_sec` and `*_refs_per_sec` key in the baseline's
//! `metrics` map must be present in the current record at ≥ `min-ratio ×`
//! its baseline value (`_steps_per_sec` counts engine steps — references
//! × schemes; `_refs_per_sec` counts raw decode throughput, used by the
//! corpus decode round). Other metrics (the paired `*_ratio` keys) are
//! ignored here — they gate themselves inside `throughput_smoke`. A key
//! missing from the current record fails: renaming a metric must refresh
//! the committed baseline in the same change.
//!
//! The comparison is deliberately per-key rather than aggregate: a 2×
//! win on one mode must not mask a 2× loss on another (each mode pins a
//! distinct engine path — serial fused decode, single-pass staged decode,
//! sharded routing, overlapped decode).

use std::process::ExitCode;

use dirsim::obs::Json;

/// Default per-key floor: current must reach 85% of the committed
/// baseline. Wide enough for shared-runner noise on paired-round bests,
/// tight enough that a structural regression (an extra pass, a
/// per-reference allocation) cannot hide.
const DEFAULT_MIN_RATIO: f64 = 0.85;

/// One gated metric's comparison.
#[derive(Debug)]
struct Verdict {
    key: String,
    baseline: f64,
    current: f64,
    ratio: f64,
    ok: bool,
}

/// Is `key` a throughput metric this gate ratchets?
fn gated(key: &str) -> bool {
    key.ends_with("_steps_per_sec") || key.ends_with("_refs_per_sec")
}

/// Compares every `*_steps_per_sec` / `*_refs_per_sec` metric of
/// `baseline` against `current`. Returns one verdict per gated key, or a
/// description of why the records cannot be compared.
fn compare(baseline: &Json, current: &Json, min_ratio: f64) -> Result<Vec<Verdict>, String> {
    let base_metrics = baseline
        .get("metrics")
        .and_then(Json::as_obj)
        .ok_or("baseline record has no `metrics` object")?;
    let cur_metrics = current
        .get("metrics")
        .ok_or("current record has no `metrics` object")?;
    let mut verdicts = Vec::new();
    for (key, value) in base_metrics {
        if !gated(key) {
            continue;
        }
        let baseline = value
            .as_f64()
            .ok_or_else(|| format!("baseline metric {key} is not a number"))?;
        let current = cur_metrics
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("current record is missing gated metric {key}"))?;
        // A non-positive baseline cannot be gated meaningfully; treat it
        // as corrupt rather than dividing by it.
        if baseline <= 0.0 {
            return Err(format!(
                "baseline metric {key} is not positive ({baseline})"
            ));
        }
        let ratio = current / baseline;
        verdicts.push(Verdict {
            key: key.clone(),
            baseline,
            current,
            ratio,
            ok: ratio >= min_ratio,
        });
    }
    if verdicts.is_empty() {
        return Err(
            "baseline record has no *_steps_per_sec or *_refs_per_sec metrics to gate".into(),
        );
    }
    Ok(verdicts)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut min_ratio = DEFAULT_MIN_RATIO;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--min-ratio" => {
                i += 1;
                min_ratio = args
                    .get(i)
                    .ok_or("--min-ratio requires a value")?
                    .parse()
                    .map_err(|_| "--min-ratio requires a number")?;
            }
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err("usage: bench_gate <baseline.json> <current.json> [--min-ratio 0.85]".into());
    };

    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let verdicts = compare(&baseline, &current, min_ratio)?;

    println!(
        "perf gate: {} vs {} (floor {min_ratio:.2}x per key)",
        current_path, baseline_path
    );
    println!(
        "{:>36} {:>14} {:>14} {:>7}",
        "metric", "baseline", "current", "ratio"
    );
    let mut ok = true;
    for v in &verdicts {
        println!(
            "{:>36} {:>14.0} {:>14.0} {:>6.2}x{}",
            v.key,
            v.baseline,
            v.current,
            v.ratio,
            if v.ok { "" } else { "  << FAIL" }
        );
        ok &= v.ok;
    }
    if !ok {
        eprintln!(
            "FAIL: at least one throughput metric fell below {min_ratio:.2}x the committed \
             baseline. If the slowdown is understood and accepted, refresh the committed \
             snapshot in this change (and apply the `perf-regression-ok` label in CI)."
        );
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "OK: all {} gated metrics at or above the floor",
        verdicts.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(err) => {
            dirsim_bench::report_error("bench_gate", err.as_ref());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(entries: &[(&str, f64)]) -> Json {
        Json::Obj(vec![(
            "metrics".into(),
            Json::Obj(
                entries
                    .iter()
                    .map(|(k, v)| ((*k).into(), Json::Float(*v)))
                    .collect(),
            ),
        )])
    }

    #[test]
    fn equal_records_pass() {
        let base = record(&[("infinite_serial_steps_per_sec", 1e8)]);
        let verdicts = compare(&base, &base, 0.85).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].ok);
        assert!((verdicts[0].ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn injected_half_speed_fails() {
        // The gate's reason to exist: a 0.5x slowdown on any single key
        // must fail even when every other key improved.
        let base = record(&[
            ("infinite_serial_steps_per_sec", 1e8),
            ("finite_serial_steps_per_sec", 5e7),
        ]);
        let cur = record(&[
            ("infinite_serial_steps_per_sec", 2e8),
            ("finite_serial_steps_per_sec", 2.5e7),
        ]);
        let verdicts = compare(&base, &cur, 0.85).unwrap();
        assert!(verdicts.iter().any(|v| !v.ok), "0.5x key must fail");
        assert!(
            verdicts.iter().any(|v| v.ok && v.ratio > 1.9),
            "improved key still passes"
        );
    }

    #[test]
    fn floor_is_inclusive_and_ignores_ratio_keys() {
        let base = record(&[
            ("infinite_serial_steps_per_sec", 1e8),
            ("infinite_best_ratio", 1.0),
        ]);
        let cur = record(&[
            ("infinite_serial_steps_per_sec", 0.85e8),
            // The paired-ratio key regressing is throughput_smoke's
            // business, not this gate's.
            ("infinite_best_ratio", 0.1),
        ]);
        let verdicts = compare(&base, &cur, 0.85).unwrap();
        assert_eq!(verdicts.len(), 1, "only *_steps_per_sec keys gate");
        assert!(verdicts[0].ok, "exactly at the floor passes");
    }

    #[test]
    fn missing_current_key_is_an_error() {
        let base = record(&[("infinite_serial_steps_per_sec", 1e8)]);
        let cur = record(&[("finite_serial_steps_per_sec", 1e8)]);
        let err = compare(&base, &cur, 0.85).unwrap_err();
        assert!(err.contains("missing"), "got: {err}");
    }

    #[test]
    fn gateless_baseline_is_an_error() {
        let base = record(&[("infinite_best_ratio", 1.0)]);
        let err = compare(&base, &base, 0.85).unwrap_err();
        assert!(err.contains("no *_steps_per_sec"), "got: {err}");
    }

    #[test]
    fn decode_refs_per_sec_keys_gate_too() {
        // The corpus decode round exports *_refs_per_sec; a decode-path
        // regression must trip the gate exactly like an engine one.
        let base = record(&[
            ("mmap_decode_refs_per_sec", 4e8),
            ("buffered_decode_refs_per_sec", 2e8),
            ("mmap_over_buffered_decode_ratio", 2.0),
        ]);
        let cur = record(&[
            ("mmap_decode_refs_per_sec", 1e8),
            ("buffered_decode_refs_per_sec", 2e8),
            ("mmap_over_buffered_decode_ratio", 0.5),
        ]);
        let verdicts = compare(&base, &cur, 0.85).unwrap();
        assert_eq!(verdicts.len(), 2, "ratio keys stay ungated");
        assert!(
            verdicts
                .iter()
                .any(|v| v.key == "mmap_decode_refs_per_sec" && !v.ok),
            "regressed decode key must fail"
        );
    }

    #[test]
    fn parses_the_real_bench_json_shape() {
        // The exact record shape `throughput_smoke --bench-json` writes.
        let text = r#"{"bench":"throughput","commit":"abc123","date":"2026-08-08",
            "refs_per_trace":60000,"workers":1,
            "metrics":{"infinite_serial_steps_per_sec":4.5e7,
                       "infinite_best_ratio":1.4}}"#;
        let base = Json::parse(text).unwrap();
        let verdicts = compare(&base, &base, 0.85).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].key, "infinite_serial_steps_per_sec");
    }
}
