//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--only <artifact>] [--csv <dir>] [--list]
//!       [--metrics-json <path>] [--progress]
//! ```
//!
//! * `--quick` — 100k references per trace instead of 1M.
//! * `--only <artifact>` — print one artifact (see `--list`).
//! * `--csv <dir>` — additionally write figure data series as CSV files.
//! * `--list` — list artifact names.
//! * `--metrics-json <path>` — write engine metrics (run manifest,
//!   per-phase timings, per-scheme operation counts) as JSON lines.
//! * `--progress` — report references/sec on stderr while simulating.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dirsim::obs::{MetricsRegistry, ProgressMeter, Recorder, RunManifest};
use dirsim::paper;
use dirsim_bench::{csv_artifacts, render_artifact, ARTIFACTS, QUICK_REFS, REPORT_REFS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut progress = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--progress" => progress = true,
            "--list" => {
                for a in ARTIFACTS {
                    println!("{a}");
                }
                return ExitCode::SUCCESS;
            }
            "--only" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--only requires an artifact name (try --list)");
                    return ExitCode::FAILURE;
                };
                only = Some(name.clone());
            }
            "--csv" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--csv requires a directory");
                    return ExitCode::FAILURE;
                };
                csv_dir = Some(dir.clone());
            }
            "--metrics-json" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--metrics-json requires a path");
                    return ExitCode::FAILURE;
                };
                metrics_json = Some(path.clone());
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: repro [--quick] [--only <artifact>] \
                     [--csv <dir>] [--list] [--metrics-json <path>] [--progress]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let refs = if quick { QUICK_REFS } else { REPORT_REFS };
    if let Some(ref name) = only {
        if !ARTIFACTS.contains(&name.as_str()) {
            eprintln!("unknown artifact {name}; try --list");
            return ExitCode::FAILURE;
        }
    }

    let registry = metrics_json
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    let meter = Arc::new(Mutex::new(if progress {
        ProgressMeter::stderr("refs", Duration::from_millis(500))
    } else {
        ProgressMeter::disabled()
    }));
    let instrument = |exp: dirsim::Experiment| {
        let exp = match &registry {
            Some(r) => exp.recorder(Arc::clone(r) as Arc<dyn Recorder>),
            None => exp,
        };
        exp.progress(Arc::clone(&meter))
    };

    let started = Instant::now();
    eprintln!("simulating headline experiment ({refs} refs/trace)...");
    let headline = match instrument(paper::headline_experiment(refs)).run_parallel() {
        Ok(r) => r,
        Err(e) => {
            dirsim_bench::report_error("repro", &e);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("simulating extended experiment...");
    let extended = match instrument(paper::extended_experiment(refs)).run_parallel() {
        Ok(r) => r,
        Err(e) => {
            dirsim_bench::report_error("repro", &e);
            return ExitCode::FAILURE;
        }
    };
    let wall = started.elapsed().as_secs_f64();

    if let (Some(path), Some(registry)) = (&metrics_json, &registry) {
        let manifest = RunManifest::new("repro")
            .schemes(paper::extended_schemes().iter().map(|s| s.name()))
            .mode("parallel")
            .trace("synth:paper-workloads")
            .refs(refs as u64)
            .wall_secs(wall)
            .extra("experiments", "headline+extended");
        if let Err(e) =
            dirsim::obs::write_jsonl_file(std::path::Path::new(path), &manifest, registry)
        {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics written to {path}");
    }

    println!("dirsim reproduction report — Agarwal, Simoni, Hennessy, Horowitz (ISCA 1988)");
    println!("references per trace: {refs}\n");
    match only {
        Some(name) => println!("{}", render_artifact(&name, &headline, &extended, refs)),
        None => {
            for a in ARTIFACTS {
                println!("{}", render_artifact(a, &headline, &extended, refs));
            }
        }
    }
    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for (name, content) in csv_artifacts(&headline, &extended) {
            let path = std::path::Path::new(&dir).join(&name);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
