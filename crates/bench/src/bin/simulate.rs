//! Run one or more coherence schemes over a trace and report the results.
//!
//! ```text
//! simulate [<scheme[,scheme...]> <trace file>] [--caches N] [--oracle]
//!          [--block BYTES] [--per-processor] [--finite SETSxWAYS]
//!          [--refs N] [--scenario NAME|FILE] [--list-scenarios]
//!          [--metrics-json PATH] [--progress]
//! ```
//!
//! With no positional arguments the paper's four headline schemes are run
//! over a synthetic POPS workload (`--refs` references, default 100 000) —
//! a self-contained demo needing no trace file. `--scenario` swaps that
//! workload for any bundled scenario by name, for a `.scn` spec file
//! parsed by the scenario language (see DESIGN.md §15), **or for a trace
//! or corpus file** — any format the frontend registry sniffs (`DTR1`,
//! `DTR2`, `DTR3` corpus, text, CSV) is accepted wherever a scenario
//! name is; a single scheme list may still be given as the only
//! positional argument. `--list-scenarios` prints the bundled registry
//! and exits.
//!
//! `<scheme>` uses the paper's notation (`Dir0B`, `Dir2NB`, `DirnNB`,
//! `CoarseVector`, `Tang`, `YenFu`, `WTI`, `Dragon`, `Berkeley`). Trace
//! files are opened through the frontend registry: magic bytes first,
//! extension second (see `trace_tool`). Fixed-record `DTR1` files are
//! memory-mapped and decoded zero-copy; every file is streamed in two
//! passes (statistics, then simulation), so multi-GB corpora run in
//! constant memory.
//!
//! `--metrics-json` writes a JSON-lines metrics file (run manifest,
//! per-phase engine timings, per-scheme operation counts — schema version
//! `dirsim_obs::SCHEMA_VERSION`); `--progress` reports references/sec on
//! stderr while the run is in flight.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dirsim::obs::{MetricsRegistry, NoopRecorder, ProgressMeter, Recorder, RunManifest};
use dirsim::prelude::*;
use dirsim_cost::CostCategory;
use dirsim_mem::CacheGeometry;
use dirsim_trace::scenario::registry;
use dirsim_trace::{open_trace, FrontendRegistry};

struct Options {
    schemes: Vec<Scheme>,
    /// `None` runs the synthetic demo workload.
    path: Option<String>,
    /// Synthetic workload: bundled scenario name or spec-file path.
    scenario: Option<String>,
    list_scenarios: bool,
    caches: Option<u32>,
    oracle: bool,
    block_bytes: u32,
    per_processor: bool,
    finite: Option<CacheGeometry>,
    refs: usize,
    metrics_json: Option<PathBuf>,
    progress: bool,
}

fn parse_args() -> Result<Options, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: simulate [<scheme> <trace>] [--caches N] [--oracle] \
                 [--block BYTES] [--per-processor] [--finite SETSxWAYS] \
                 [--refs N] [--scenario NAME|FILE] [--list-scenarios] \
                 [--metrics-json PATH] [--progress]";
    let mut positional = Vec::new();
    let mut opts = Options {
        schemes: vec![Scheme::Dragon],
        path: None,
        scenario: None,
        list_scenarios: false,
        caches: None,
        oracle: false,
        block_bytes: 16,
        per_processor: false,
        finite: None,
        refs: 100_000,
        metrics_json: None,
        progress: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--oracle" => opts.oracle = true,
            "--per-processor" => opts.per_processor = true,
            "--progress" => opts.progress = true,
            "--list-scenarios" => opts.list_scenarios = true,
            "--scenario" => {
                i += 1;
                opts.scenario = Some(args.get(i).ok_or(usage)?.clone());
            }
            "--caches" => {
                i += 1;
                opts.caches = Some(
                    args.get(i)
                        .ok_or(usage)?
                        .parse()
                        .map_err(|_| "--caches expects a number")?,
                );
            }
            "--block" => {
                i += 1;
                opts.block_bytes = args
                    .get(i)
                    .ok_or(usage)?
                    .parse()
                    .map_err(|_| "--block expects a number of bytes")?;
            }
            "--refs" => {
                i += 1;
                opts.refs = args
                    .get(i)
                    .ok_or(usage)?
                    .parse()
                    .map_err(|_| "--refs expects a number")?;
            }
            "--metrics-json" => {
                i += 1;
                opts.metrics_json = Some(PathBuf::from(args.get(i).ok_or(usage)?));
            }
            "--finite" => {
                i += 1;
                let spec = args.get(i).ok_or(usage)?;
                let (sets, ways) = spec
                    .split_once('x')
                    .ok_or("--finite expects SETSxWAYS, e.g. 64x4")?;
                opts.finite = Some(CacheGeometry {
                    sets: sets.parse().map_err(|_| "bad set count")?,
                    ways: ways.parse().map_err(|_| "bad way count")?,
                });
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    match &positional[..] {
        [] => {
            // Demo mode: the paper's headline schemes over a synthetic
            // scenario (POPS unless --scenario says otherwise).
            opts.schemes = Scheme::paper_lineup();
        }
        [scheme] if opts.scenario.is_some() => {
            opts.schemes = scheme
                .split(',')
                .map(str::parse)
                .collect::<Result<Vec<Scheme>, _>>()?;
        }
        [scheme, path] => {
            if opts.scenario.is_some() {
                return Err("--scenario and a trace file are mutually exclusive".into());
            }
            opts.schemes = scheme
                .split(',')
                .map(str::parse)
                .collect::<Result<Vec<Scheme>, _>>()?;
            opts.path = Some(path.clone());
        }
        _ => return Err(usage.into()),
    }
    Ok(opts)
}

/// Streams one statistics pass over a trace file (any registered
/// format) without materialising it.
fn stream_stats(path: &str) -> Result<TraceStats, Box<dyn std::error::Error>> {
    let mut src = open_trace(path).map_err(|e| format!("{path}: {e}"))?;
    let mut stats = TraceStats::new();
    let mut chunk = Vec::new();
    while src
        .read_chunk(&mut chunk, 65_536)
        .map_err(|e| format!("{path}: {e}"))?
        > 0
    {
        for r in &chunk {
            stats.observe(r);
        }
    }
    Ok(stats)
}

/// Does `arg` (a `--scenario` value) name a trace/corpus file rather
/// than a scenario? True when it is an existing file the frontend
/// registry recognises — `.scn` spec files and bundled scenario names
/// fall through to `Scenario::resolve`.
fn is_trace_file(arg: &str) -> bool {
    let path = std::path::Path::new(arg);
    path.is_file() && matches!(FrontendRegistry::builtin().find(path), Ok(Some(_)))
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args()?;

    if opts.list_scenarios {
        println!(
            "{:<18} {:>5} {:>5}  description",
            "scenario", "cpus", "procs"
        );
        for s in registry() {
            println!(
                "{:<18} {:>5} {:>5}  {}",
                s.name(),
                s.config().cpus,
                s.config().processes,
                s.description()
            );
        }
        return Ok(());
    }

    let registry = opts
        .metrics_json
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    let recorder: Arc<dyn Recorder> = match &registry {
        Some(r) => Arc::clone(r) as Arc<dyn Recorder>,
        None => Arc::new(NoopRecorder),
    };
    let meter = Arc::new(Mutex::new(if opts.progress {
        ProgressMeter::stderr("refs", Duration::from_millis(500))
    } else {
        ProgressMeter::disabled()
    }));

    // Resolve the reference stream: an explicit trace file, a --scenario
    // value that names a trace/corpus file, or a synthetic scenario (the
    // bundled POPS spec unless --scenario overrides it). Files stream in
    // two passes — statistics, then simulation — so they are never
    // materialised; synthetic workloads are generated once up front.
    let scenario_arg = opts.scenario.as_deref();
    let trace_path = match (&opts.path, scenario_arg) {
        (Some(path), _) => Some(path.clone()),
        (None, Some(arg)) if is_trace_file(arg) => Some(arg.to_string()),
        _ => None,
    };
    let (refs, stats, trace_desc, seed) = match &trace_path {
        Some(path) => {
            let stats = stream_stats(path)?;
            if stats.total() == 0 {
                return Err("trace is empty".into());
            }
            (Vec::new(), stats, path.clone(), None)
        }
        None => {
            let scenario = Scenario::resolve(scenario_arg.unwrap_or("pops"))?;
            let config = scenario.config();
            let seed = config.seed;
            let desc = format!(
                "scenario:{}(cpus={}, seed={:#x})",
                scenario.name(),
                config.cpus,
                seed
            );
            let refs: Vec<MemRef> = scenario.workload().take(opts.refs).collect();
            let stats = TraceStats::from_refs(refs.iter().copied());
            (refs, stats, desc, Some(seed))
        }
    };
    let caches = opts.caches.unwrap_or_else(|| {
        if opts.per_processor {
            stats.cpu_count() as u32
        } else {
            // One cache per process *id*, not per distinct process: an
            // open-system scenario can retire an id without it ever
            // emitting a reference, leaving gaps in the id space.
            stats.process_id_bound()
        }
    });
    let config = SimConfig {
        block_map: BlockMap::new(opts.block_bytes)?,
        sharing: if opts.per_processor {
            SharingModel::PerProcessor
        } else {
            SharingModel::PerProcess
        },
        check_oracle: opts.oracle,
        geometry: opts.finite,
        ..SimConfig::default()
    };

    // One single-pass broadcast run covers every requested scheme and
    // feeds the phase/scheme instrumentation. Trace files come back
    // through the frontend registry (mmap-backed and zero-copy for
    // fixed-record binary); synthetic workloads replay the generated
    // buffer.
    let started = Instant::now();
    let mut observed = 0u64;
    let mut tick = |_: &MemRef| {
        observed += 1;
        meter
            .lock()
            .expect("progress meter poisoned")
            .tick(observed, None);
    };
    let engine = BroadcastSimulator::new(config).recorder(Arc::clone(&recorder));
    let results = match &trace_path {
        Some(path) => engine.run_observed(
            &opts.schemes,
            caches,
            open_trace(path).map_err(|e| format!("{path}: {e}"))?,
            &mut tick,
        )?,
        None => engine.run_observed(
            &opts.schemes,
            caches,
            IterSource::new(refs.iter().copied()),
            &mut tick,
        )?,
    };
    let wall = started.elapsed().as_secs_f64();
    meter
        .lock()
        .expect("progress meter poisoned")
        .finish(observed, None);

    if let (Some(path), Some(registry)) = (&opts.metrics_json, &registry) {
        let mut manifest = RunManifest::new("simulate")
            .schemes(results.iter().map(|r| r.scheme.clone()))
            .mode("single-pass")
            .trace(&trace_desc)
            .refs(observed)
            .wall_secs(wall)
            .extra("caches", &caches.to_string())
            .extra("block_bytes", &opts.block_bytes.to_string());
        if let Some(seed) = seed {
            manifest = manifest.seed(seed);
        }
        dirsim::obs::write_jsonl_file(path, &manifest, registry)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("metrics written to {}", path.display());
    }

    if results.len() > 1 {
        // Comparison mode: one summary row per scheme.
        println!("trace:    {trace_desc} ({stats})");
        println!(
            "{:>14} {:>12} {:>12} {:>10} {:>10}",
            "scheme", "pipelined", "non-pipelined", "txns/ref", "miss rate"
        );
        for result in &results {
            let bd = result.breakdown(CostModel::pipelined());
            println!(
                "{:>14} {:>12.4} {:>12.4} {:>10.4} {:>9.3}%",
                result.scheme,
                bd.cycles_per_ref(),
                result.cycles_per_ref(CostModel::non_pipelined()),
                bd.transactions_per_ref(),
                result.events.data_miss_rate() * 100.0,
            );
        }
        return Ok(());
    }

    let result = &results[0];
    println!("trace:    {trace_desc} ({stats})");
    println!(
        "scheme:   {} over {caches} caches ({} sharing, {}-byte blocks{})",
        result.scheme,
        config.sharing,
        opts.block_bytes,
        match opts.finite {
            Some(g) => format!(", finite {}x{}", g.sets, g.ways),
            None => ", infinite caches".to_string(),
        }
    );
    if opts.oracle {
        println!("oracle:   every data movement audited — coherent ✓");
    }
    println!("\nevent frequencies (% of refs):");
    for (kind, count) in result.events.iter() {
        if count > 0 {
            println!(
                "  {:<14} {:>8.3}  ({count})",
                kind.name(),
                result.events.frequency(kind) * 100.0
            );
        }
    }
    println!("\ncost:");
    for model in [CostModel::pipelined(), CostModel::non_pipelined()] {
        let bd = result.breakdown(model);
        println!(
            "  {:>14}: {:.4} cycles/ref  ({:.2} cycles/txn, {:.4} txns/ref)",
            model.kind().to_string(),
            bd.cycles_per_ref(),
            bd.cycles_per_transaction(),
            bd.transactions_per_ref()
        );
    }
    let bd = result.breakdown(CostModel::pipelined());
    println!("  pipelined breakdown:");
    for cat in CostCategory::ALL {
        if bd[cat] > 0.0 {
            println!("    {:<11} {:.4}", cat.name(), bd[cat]);
        }
    }
    if result.fanout.total() > 0 {
        println!(
            "\nclean-write invalidations ≤1 cache: {:.1}% (of {})",
            result.fanout.fraction_at_most(1) * 100.0,
            result.fanout.total()
        );
    }
    if result.capacity_evictions > 0 {
        println!("capacity evictions: {}", result.capacity_evictions);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            dirsim_bench::report_error("simulate", err.as_ref());
            ExitCode::FAILURE
        }
    }
}
