//! Run one or more coherence schemes over a trace file and report the
//! results.
//!
//! ```text
//! simulate <scheme[,scheme...]> <trace file> [--caches N] [--oracle]
//!          [--block BYTES] [--per-processor] [--finite SETSxWAYS]
//! ```
//!
//! `<scheme>` uses the paper's notation (`Dir0B`, `Dir2NB`, `DirnNB`,
//! `CoarseVector`, `Tang`, `YenFu`, `WTI`, `Dragon`, `Berkeley`). Trace
//! files ending in `.txt` or `.trace` are parsed as text, anything else as `DTR1`
//! binary (see `trace_tool`).

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use dirsim::prelude::*;
use dirsim_cost::CostCategory;
use dirsim_mem::CacheGeometry;
use dirsim_trace::compress::read_compressed;
use dirsim_trace::io::{read_binary, read_text};

struct Options {
    schemes: Vec<Scheme>,
    path: String,
    caches: Option<u32>,
    oracle: bool,
    block_bytes: u32,
    per_processor: bool,
    finite: Option<CacheGeometry>,
}

fn parse_args() -> Result<Options, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: simulate <scheme> <trace> [--caches N] [--oracle] \
                 [--block BYTES] [--per-processor] [--finite SETSxWAYS]";
    let mut positional = Vec::new();
    let mut opts = Options {
        schemes: vec![Scheme::Dragon],
        path: String::new(),
        caches: None,
        oracle: false,
        block_bytes: 16,
        per_processor: false,
        finite: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--oracle" => opts.oracle = true,
            "--per-processor" => opts.per_processor = true,
            "--caches" => {
                i += 1;
                opts.caches = Some(
                    args.get(i)
                        .ok_or(usage)?
                        .parse()
                        .map_err(|_| "--caches expects a number")?,
                );
            }
            "--block" => {
                i += 1;
                opts.block_bytes = args
                    .get(i)
                    .ok_or(usage)?
                    .parse()
                    .map_err(|_| "--block expects a number of bytes")?;
            }
            "--finite" => {
                i += 1;
                let spec = args.get(i).ok_or(usage)?;
                let (sets, ways) = spec
                    .split_once('x')
                    .ok_or("--finite expects SETSxWAYS, e.g. 64x4")?;
                opts.finite = Some(CacheGeometry {
                    sets: sets.parse().map_err(|_| "bad set count")?,
                    ways: ways.parse().map_err(|_| "bad way count")?,
                });
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [scheme, path] = &positional[..] else {
        return Err(usage.into());
    };
    opts.schemes = scheme
        .split(',')
        .map(str::parse)
        .collect::<Result<Vec<Scheme>, _>>()?;
    opts.path = path.clone();
    Ok(opts)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args()?;
    let file = File::open(&opts.path).map_err(|e| format!("{}: {e}", opts.path))?;
    let refs: Vec<MemRef> = if opts.path.ends_with(".txt") || opts.path.ends_with(".trace") {
        read_text(BufReader::new(file)).collect::<Result<_, _>>()
    } else if opts.path.ends_with(".dtr2") {
        read_compressed(BufReader::new(file)).collect::<Result<_, _>>()
    } else {
        read_binary(BufReader::new(file)).collect::<Result<_, _>>()
    }?;
    if refs.is_empty() {
        return Err("trace is empty".into());
    }

    let stats = TraceStats::from_refs(refs.iter().copied());
    let caches = opts.caches.unwrap_or_else(|| {
        if opts.per_processor {
            stats.cpu_count() as u32
        } else {
            stats.process_count() as u32
        }
    });
    let config = SimConfig {
        block_map: BlockMap::new(opts.block_bytes)?,
        sharing: if opts.per_processor {
            SharingModel::PerProcessor
        } else {
            SharingModel::PerProcess
        },
        check_oracle: opts.oracle,
        geometry: opts.finite,
        ..SimConfig::default()
    };
    if opts.schemes.len() > 1 {
        // Comparison mode: one summary row per scheme.
        println!("trace:    {} ({stats})", opts.path);
        println!(
            "{:>14} {:>12} {:>12} {:>10} {:>10}",
            "scheme", "pipelined", "non-pipelined", "txns/ref", "miss rate"
        );
        for &scheme in &opts.schemes {
            let mut protocol = scheme.build(caches);
            let result = Simulator::new(config).run(protocol.as_mut(), refs.iter().copied())?;
            let bd = result.breakdown(CostModel::pipelined());
            println!(
                "{:>14} {:>12.4} {:>12.4} {:>10.4} {:>9.3}%",
                result.scheme,
                bd.cycles_per_ref(),
                result.cycles_per_ref(CostModel::non_pipelined()),
                bd.transactions_per_ref(),
                result.events.data_miss_rate() * 100.0,
            );
        }
        return Ok(());
    }

    let mut protocol = opts.schemes[0].build(caches);
    let result = Simulator::new(config).run(protocol.as_mut(), refs)?;

    println!("trace:    {} ({stats})", opts.path);
    println!(
        "scheme:   {} over {caches} caches ({} sharing, {}-byte blocks{})",
        result.scheme,
        config.sharing,
        opts.block_bytes,
        match opts.finite {
            Some(g) => format!(", finite {}x{}", g.sets, g.ways),
            None => ", infinite caches".to_string(),
        }
    );
    if opts.oracle {
        println!("oracle:   every data movement audited — coherent ✓");
    }
    println!("\nevent frequencies (% of refs):");
    for (kind, count) in result.events.iter() {
        if count > 0 {
            println!(
                "  {:<14} {:>8.3}  ({count})",
                kind.name(),
                result.events.frequency(kind) * 100.0
            );
        }
    }
    println!("\ncost:");
    for model in [CostModel::pipelined(), CostModel::non_pipelined()] {
        let bd = result.breakdown(model);
        println!(
            "  {:>14}: {:.4} cycles/ref  ({:.2} cycles/txn, {:.4} txns/ref)",
            model.kind().to_string(),
            bd.cycles_per_ref(),
            bd.cycles_per_transaction(),
            bd.transactions_per_ref()
        );
    }
    let bd = result.breakdown(CostModel::pipelined());
    println!("  pipelined breakdown:");
    for cat in CostCategory::ALL {
        if bd[cat] > 0.0 {
            println!("    {:<11} {:.4}", cat.name(), bd[cat]);
        }
    }
    if result.fanout.total() > 0 {
        println!(
            "\nclean-write invalidations ≤1 cache: {:.1}% (of {})",
            result.fanout.fraction_at_most(1) * 100.0,
            result.fanout.total()
        );
    }
    if result.capacity_evictions > 0 {
        println!("capacity evictions: {}", result.capacity_evictions);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            dirsim_bench::report_error("simulate", err.as_ref());
            ExitCode::FAILURE
        }
    }
}
