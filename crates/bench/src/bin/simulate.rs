//! Run one or more coherence schemes over a trace and report the results.
//!
//! ```text
//! simulate [<scheme[,scheme...]> <trace file>] [--caches N] [--oracle]
//!          [--block BYTES] [--per-processor] [--finite SETSxWAYS]
//!          [--refs N] [--scenario NAME|FILE] [--list-scenarios]
//!          [--metrics-json PATH] [--progress]
//! ```
//!
//! With no positional arguments the paper's four headline schemes are run
//! over a synthetic POPS workload (`--refs` references, default 100 000) —
//! a self-contained demo needing no trace file. `--scenario` swaps that
//! workload for any bundled scenario by name, or for a `.scn` spec file
//! parsed by the scenario language (see DESIGN.md §15); a single scheme
//! list may still be given as the only positional argument.
//! `--list-scenarios` prints the bundled registry and exits.
//!
//! `<scheme>` uses the paper's notation (`Dir0B`, `Dir2NB`, `DirnNB`,
//! `CoarseVector`, `Tang`, `YenFu`, `WTI`, `Dragon`, `Berkeley`). Trace
//! files ending in `.txt` or `.trace` are parsed as text, anything else as
//! `DTR1` binary (see `trace_tool`).
//!
//! `--metrics-json` writes a JSON-lines metrics file (run manifest,
//! per-phase engine timings, per-scheme operation counts — schema version
//! `dirsim_obs::SCHEMA_VERSION`); `--progress` reports references/sec on
//! stderr while the run is in flight.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dirsim::obs::{MetricsRegistry, NoopRecorder, ProgressMeter, Recorder, RunManifest};
use dirsim::prelude::*;
use dirsim_cost::CostCategory;
use dirsim_mem::CacheGeometry;
use dirsim_trace::compress::read_compressed;
use dirsim_trace::io::{read_binary, read_text};
use dirsim_trace::scenario::registry;

struct Options {
    schemes: Vec<Scheme>,
    /// `None` runs the synthetic demo workload.
    path: Option<String>,
    /// Synthetic workload: bundled scenario name or spec-file path.
    scenario: Option<String>,
    list_scenarios: bool,
    caches: Option<u32>,
    oracle: bool,
    block_bytes: u32,
    per_processor: bool,
    finite: Option<CacheGeometry>,
    refs: usize,
    metrics_json: Option<PathBuf>,
    progress: bool,
}

fn parse_args() -> Result<Options, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: simulate [<scheme> <trace>] [--caches N] [--oracle] \
                 [--block BYTES] [--per-processor] [--finite SETSxWAYS] \
                 [--refs N] [--scenario NAME|FILE] [--list-scenarios] \
                 [--metrics-json PATH] [--progress]";
    let mut positional = Vec::new();
    let mut opts = Options {
        schemes: vec![Scheme::Dragon],
        path: None,
        scenario: None,
        list_scenarios: false,
        caches: None,
        oracle: false,
        block_bytes: 16,
        per_processor: false,
        finite: None,
        refs: 100_000,
        metrics_json: None,
        progress: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--oracle" => opts.oracle = true,
            "--per-processor" => opts.per_processor = true,
            "--progress" => opts.progress = true,
            "--list-scenarios" => opts.list_scenarios = true,
            "--scenario" => {
                i += 1;
                opts.scenario = Some(args.get(i).ok_or(usage)?.clone());
            }
            "--caches" => {
                i += 1;
                opts.caches = Some(
                    args.get(i)
                        .ok_or(usage)?
                        .parse()
                        .map_err(|_| "--caches expects a number")?,
                );
            }
            "--block" => {
                i += 1;
                opts.block_bytes = args
                    .get(i)
                    .ok_or(usage)?
                    .parse()
                    .map_err(|_| "--block expects a number of bytes")?;
            }
            "--refs" => {
                i += 1;
                opts.refs = args
                    .get(i)
                    .ok_or(usage)?
                    .parse()
                    .map_err(|_| "--refs expects a number")?;
            }
            "--metrics-json" => {
                i += 1;
                opts.metrics_json = Some(PathBuf::from(args.get(i).ok_or(usage)?));
            }
            "--finite" => {
                i += 1;
                let spec = args.get(i).ok_or(usage)?;
                let (sets, ways) = spec
                    .split_once('x')
                    .ok_or("--finite expects SETSxWAYS, e.g. 64x4")?;
                opts.finite = Some(CacheGeometry {
                    sets: sets.parse().map_err(|_| "bad set count")?,
                    ways: ways.parse().map_err(|_| "bad way count")?,
                });
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    match &positional[..] {
        [] => {
            // Demo mode: the paper's headline schemes over a synthetic
            // scenario (POPS unless --scenario says otherwise).
            opts.schemes = Scheme::paper_lineup();
        }
        [scheme] if opts.scenario.is_some() => {
            opts.schemes = scheme
                .split(',')
                .map(str::parse)
                .collect::<Result<Vec<Scheme>, _>>()?;
        }
        [scheme, path] => {
            if opts.scenario.is_some() {
                return Err("--scenario and a trace file are mutually exclusive".into());
            }
            opts.schemes = scheme
                .split(',')
                .map(str::parse)
                .collect::<Result<Vec<Scheme>, _>>()?;
            opts.path = Some(path.clone());
        }
        _ => return Err(usage.into()),
    }
    Ok(opts)
}

fn load_trace(path: &str) -> Result<Vec<MemRef>, Box<dyn std::error::Error>> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let refs: Vec<MemRef> = if path.ends_with(".txt") || path.ends_with(".trace") {
        read_text(BufReader::new(file)).collect::<Result<_, _>>()
    } else if path.ends_with(".dtr2") {
        read_compressed(BufReader::new(file)).collect::<Result<_, _>>()
    } else {
        read_binary(BufReader::new(file)).collect::<Result<_, _>>()
    }?;
    if refs.is_empty() {
        return Err("trace is empty".into());
    }
    Ok(refs)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args()?;

    if opts.list_scenarios {
        println!(
            "{:<18} {:>5} {:>5}  description",
            "scenario", "cpus", "procs"
        );
        for s in registry() {
            println!(
                "{:<18} {:>5} {:>5}  {}",
                s.name(),
                s.config().cpus,
                s.config().processes,
                s.description()
            );
        }
        return Ok(());
    }

    let registry = opts
        .metrics_json
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    let recorder: Arc<dyn Recorder> = match &registry {
        Some(r) => Arc::clone(r) as Arc<dyn Recorder>,
        None => Arc::new(NoopRecorder),
    };
    let meter = Arc::new(Mutex::new(if opts.progress {
        ProgressMeter::stderr("refs", Duration::from_millis(500))
    } else {
        ProgressMeter::disabled()
    }));

    // Materialise the reference stream: a trace file, or a synthetic
    // scenario (the bundled POPS spec unless --scenario overrides it).
    let (refs, trace_desc, seed) = match &opts.path {
        Some(path) => (load_trace(path)?, path.clone(), None),
        None => {
            let arg = opts.scenario.as_deref().unwrap_or("pops");
            let scenario = Scenario::resolve(arg)?;
            let config = scenario.config();
            let seed = config.seed;
            let desc = format!(
                "scenario:{}(cpus={}, seed={:#x})",
                scenario.name(),
                config.cpus,
                seed
            );
            let refs: Vec<MemRef> = scenario.workload().take(opts.refs).collect();
            (refs, desc, Some(seed))
        }
    };

    let stats = TraceStats::from_refs(refs.iter().copied());
    let caches = opts.caches.unwrap_or_else(|| {
        if opts.per_processor {
            stats.cpu_count() as u32
        } else {
            // One cache per process *id*, not per distinct process: an
            // open-system scenario can retire an id without it ever
            // emitting a reference, leaving gaps in the id space.
            stats.process_id_bound()
        }
    });
    let config = SimConfig {
        block_map: BlockMap::new(opts.block_bytes)?,
        sharing: if opts.per_processor {
            SharingModel::PerProcessor
        } else {
            SharingModel::PerProcess
        },
        check_oracle: opts.oracle,
        geometry: opts.finite,
        ..SimConfig::default()
    };

    // One single-pass broadcast run covers every requested scheme and
    // feeds the phase/scheme instrumentation.
    let started = Instant::now();
    let mut observed = 0u64;
    let results = BroadcastSimulator::new(config)
        .recorder(Arc::clone(&recorder))
        .run_observed(
            &opts.schemes,
            caches,
            IterSource::new(refs.iter().copied()),
            |_| {
                observed += 1;
                meter
                    .lock()
                    .expect("progress meter poisoned")
                    .tick(observed, None);
            },
        )?;
    let wall = started.elapsed().as_secs_f64();
    meter
        .lock()
        .expect("progress meter poisoned")
        .finish(observed, None);

    if let (Some(path), Some(registry)) = (&opts.metrics_json, &registry) {
        let mut manifest = RunManifest::new("simulate")
            .schemes(results.iter().map(|r| r.scheme.clone()))
            .mode("single-pass")
            .trace(&trace_desc)
            .refs(observed)
            .wall_secs(wall)
            .extra("caches", &caches.to_string())
            .extra("block_bytes", &opts.block_bytes.to_string());
        if let Some(seed) = seed {
            manifest = manifest.seed(seed);
        }
        dirsim::obs::write_jsonl_file(path, &manifest, registry)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("metrics written to {}", path.display());
    }

    if results.len() > 1 {
        // Comparison mode: one summary row per scheme.
        println!("trace:    {trace_desc} ({stats})");
        println!(
            "{:>14} {:>12} {:>12} {:>10} {:>10}",
            "scheme", "pipelined", "non-pipelined", "txns/ref", "miss rate"
        );
        for result in &results {
            let bd = result.breakdown(CostModel::pipelined());
            println!(
                "{:>14} {:>12.4} {:>12.4} {:>10.4} {:>9.3}%",
                result.scheme,
                bd.cycles_per_ref(),
                result.cycles_per_ref(CostModel::non_pipelined()),
                bd.transactions_per_ref(),
                result.events.data_miss_rate() * 100.0,
            );
        }
        return Ok(());
    }

    let result = &results[0];
    println!("trace:    {trace_desc} ({stats})");
    println!(
        "scheme:   {} over {caches} caches ({} sharing, {}-byte blocks{})",
        result.scheme,
        config.sharing,
        opts.block_bytes,
        match opts.finite {
            Some(g) => format!(", finite {}x{}", g.sets, g.ways),
            None => ", infinite caches".to_string(),
        }
    );
    if opts.oracle {
        println!("oracle:   every data movement audited — coherent ✓");
    }
    println!("\nevent frequencies (% of refs):");
    for (kind, count) in result.events.iter() {
        if count > 0 {
            println!(
                "  {:<14} {:>8.3}  ({count})",
                kind.name(),
                result.events.frequency(kind) * 100.0
            );
        }
    }
    println!("\ncost:");
    for model in [CostModel::pipelined(), CostModel::non_pipelined()] {
        let bd = result.breakdown(model);
        println!(
            "  {:>14}: {:.4} cycles/ref  ({:.2} cycles/txn, {:.4} txns/ref)",
            model.kind().to_string(),
            bd.cycles_per_ref(),
            bd.cycles_per_transaction(),
            bd.transactions_per_ref()
        );
    }
    let bd = result.breakdown(CostModel::pipelined());
    println!("  pipelined breakdown:");
    for cat in CostCategory::ALL {
        if bd[cat] > 0.0 {
            println!("    {:<11} {:.4}", cat.name(), bd[cat]);
        }
    }
    if result.fanout.total() > 0 {
        println!(
            "\nclean-write invalidations ≤1 cache: {:.1}% (of {})",
            result.fanout.fraction_at_most(1) * 100.0,
            result.fanout.total()
        );
    }
    if result.capacity_evictions > 0 {
        println!("capacity evictions: {}", result.capacity_evictions);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            dirsim_bench::report_error("simulate", err.as_ref());
            ExitCode::FAILURE
        }
    }
}
