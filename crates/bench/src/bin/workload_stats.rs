//! Workload calibration tool: prints the Table 3/Table 4 shape of a
//! scenario so generator parameters can be tuned against the paper's
//! numbers.
//!
//! Usage: `workload_stats [scenario-name|spec.scn] [refs]`
//!
//! Any bundled scenario name (`pops`, `thor`, `pero`, `lock-storm`, …)
//! or a scenario spec file is accepted; run `simulate --list-scenarios`
//! for the registry.

use std::process::ExitCode;

use dirsim::prelude::*;
use dirsim::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("pops");
    let refs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300_000);
    let trace = match Scenario::resolve(which) {
        Ok(scenario) => scenario,
        Err(err) => {
            eprintln!("workload_stats: {err}");
            return ExitCode::FAILURE;
        }
    };

    let stats = TraceStats::from_refs(trace.workload().take(refs));
    println!("{} over {refs} refs:", trace.name());
    println!(
        "  instr frac     {:.3}",
        stats.instructions() as f64 / stats.total() as f64
    );
    println!(
        "  read frac      {:.3}",
        stats.data_reads() as f64 / stats.total() as f64
    );
    println!(
        "  write frac     {:.3}",
        stats.data_writes() as f64 / stats.total() as f64
    );
    println!(
        "  lock/reads     {:.3}  (paper POPS/THOR ≈ 0.33)",
        stats.lock_read_fraction()
    );
    println!(
        "  os frac        {:.3}",
        stats.system() as f64 / stats.total() as f64
    );

    let results = dirsim::Experiment::new()
        .workload(dirsim::NamedWorkload::from(&trace))
        .schemes(Scheme::paper_lineup())
        .refs_per_trace(refs)
        .run()
        .expect("simulation");
    println!();
    print!("{}", report::render_table4(&results));
    println!();
    print!("{}", report::render_figure1(&results, Scheme::dir0_b()));
    println!();
    let model = CostModel::pipelined();
    for s in &results.per_scheme {
        println!(
            "  {:>8}: {:.4} cycles/ref (pipelined)",
            s.scheme.name(),
            s.combined.cycles_per_ref(model)
        );
    }
    ExitCode::SUCCESS
}
