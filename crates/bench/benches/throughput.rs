//! Raw component throughput: workload generation, trace IO, protocol state
//! machines, and the end-to-end engine (references per second).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use dirsim::prelude::*;
use dirsim_trace::io::{read_binary, write_binary};
use dirsim_trace::{BorrowedChunkSource, MmapTraceSource, TraceSource};

const REFS: usize = 100_000;

fn pops() -> &'static Scenario {
    Scenario::named("pops").expect("bundled")
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/generator");
    group.throughput(Throughput::Elements(REFS as u64));
    for name in ["pops", "thor", "pero"] {
        let scenario = Scenario::named(name).expect("bundled");
        group.bench_function(&name.to_uppercase(), |b| {
            b.iter(|| {
                let n = scenario.workload().take(REFS).count();
                std::hint::black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let refs: Vec<MemRef> = pops().workload().take(REFS).collect();
    let mut encoded = Vec::new();
    write_binary(&mut encoded, refs.iter().copied()).unwrap();

    let mut group = c.benchmark_group("throughput/trace_io");
    group.throughput(Throughput::Elements(REFS as u64));
    group.bench_function("write_binary", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_binary(&mut buf, refs.iter().copied()).unwrap();
            std::hint::black_box(buf.len())
        })
    });
    group.bench_function("read_binary", |b| {
        b.iter(|| {
            let n = read_binary(&encoded[..]).count();
            std::hint::black_box(n)
        })
    });
    group.finish();
}

/// The decode-bound corpus round: buffered `BinaryTraceSource` (one
/// `read` syscall batch + per-record copy out of an owned buffer) vs the
/// mmap source decoding straight from the page cache. A 10^7-reference
/// DTR1 file (160 MB) keeps the round IO-bound the way real corpus
/// ingestion is; the chunk loop mirrors the engine's decode stage.
fn bench_corpus_decode(c: &mut Criterion) {
    const DECODE_REFS: usize = 10_000_000;
    const CHUNK: usize = 32_768;
    let path = std::env::temp_dir().join(format!("dirsim-bench-decode-{}.dtr", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create bench corpus");
        let mut w = std::io::BufWriter::new(file);
        write_binary(&mut w, pops().workload().take(DECODE_REFS)).expect("write bench corpus");
    }

    let mut group = c.benchmark_group("throughput/corpus_decode_10m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DECODE_REFS as u64));
    group.bench_function("buffered", |b| {
        b.iter(|| {
            let file = std::fs::File::open(&path).expect("open bench corpus");
            let mut src = read_binary(std::io::BufReader::new(file));
            let mut chunk = Vec::new();
            let mut n = 0usize;
            while src.read_chunk(&mut chunk, CHUNK).expect("decode") > 0 {
                n += chunk.len();
            }
            std::hint::black_box(n)
        })
    });
    group.bench_function("mmap", |b| {
        // The borrowed-chunk view is the path the engine takes: decode
        // once into the source's buffer, lend the slice, no copy out.
        b.iter(|| {
            let mut src = MmapTraceSource::open(&path).expect("map bench corpus");
            let mut n = 0usize;
            loop {
                let chunk = src.next_chunk(CHUNK).expect("decode");
                if chunk.is_empty() {
                    break;
                }
                n += chunk.len();
            }
            std::hint::black_box(n)
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_protocols(c: &mut Criterion) {
    let refs: Vec<MemRef> = pops().workload().take(REFS).collect();
    let mut group = c.benchmark_group("throughput/engine");
    group.throughput(Throughput::Elements(REFS as u64));
    let mut schemes = Scheme::paper_lineup();
    schemes.push(Scheme::Directory(DirSpec::dir_n_nb()));
    schemes.push(Scheme::Berkeley);
    schemes.push(Scheme::CoarseVector);
    for scheme in schemes {
        group.bench_function(&scheme.name(), |b| {
            b.iter_batched(
                || scheme.build(4),
                |mut protocol| {
                    Simulator::paper()
                        .run(protocol.as_mut(), refs.iter().copied())
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_oracle_overhead(c: &mut Criterion) {
    let refs: Vec<MemRef> = pops().workload().take(REFS).collect();
    let mut group = c.benchmark_group("throughput/oracle");
    group.throughput(Throughput::Elements(REFS as u64));
    for check in [false, true] {
        let label = if check {
            "with_oracle"
        } else {
            "without_oracle"
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || Scheme::Directory(DirSpec::dir0_b()).build(4),
                |mut protocol| {
                    let sim = Simulator::new(SimConfig {
                        check_oracle: check,
                        ..SimConfig::default()
                    });
                    sim.run(protocol.as_mut(), refs.iter().copied()).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The tentpole comparison: the full headline matrix (3 traces × 4
/// schemes at 200k refs/trace) under each execution path. `serial`
/// regenerates and re-simulates per scheme; `single_pass` streams each
/// trace once through all schemes; `sharded` additionally partitions by
/// block address across workers; `pipelined` is the sharded placement
/// with trace decode overlapped on a dedicated producer thread, and
/// `pipelined_1` isolates the overlap itself (one step worker, so the
/// only difference from `single_pass` is where decode runs). Throughput
/// is engine steps per second (references × schemes).
fn bench_execution_modes(c: &mut Criterion) {
    const MATRIX_REFS: usize = 200_000;
    let exp = dirsim::paper::headline_experiment(MATRIX_REFS);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let steps = (MATRIX_REFS * exp.workload_count() * exp.scheme_count()) as u64;
    let mut group = c.benchmark_group("throughput/full_matrix_200k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(steps));
    for (label, mode) in [
        ("serial", ExecutionMode::Serial),
        ("single_pass", ExecutionMode::SinglePass),
        ("sharded", ExecutionMode::Sharded { workers }),
        ("pipelined_1", ExecutionMode::Pipelined { workers: 1 }),
        ("pipelined", ExecutionMode::Pipelined { workers }),
    ] {
        group.bench_function(label, |b| b.iter(|| exp.run_with(mode).unwrap()));
    }
    group.finish();
}

/// The finite-cache counterpart of [`bench_execution_modes`]: the same
/// headline matrix over a 64-set × 4-way LRU geometry, so every mode
/// additionally pays for replacement lookups, evictions, and re-fetches.
/// Sharded execution partitions by cache **set index** here (LRU state
/// never crosses sets), which is exactly as parallel as block sharding
/// whenever `sets >= workers`.
fn bench_execution_modes_finite(c: &mut Criterion) {
    const MATRIX_REFS: usize = 200_000;
    let config = SimConfig::builder()
        .geometry(dirsim_mem::CacheGeometry { sets: 64, ways: 4 })
        .build()
        .expect("bench geometry is valid");
    let exp = dirsim::paper::headline_experiment(MATRIX_REFS).sim_config(config);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let steps = (MATRIX_REFS * exp.workload_count() * exp.scheme_count()) as u64;
    let mut group = c.benchmark_group("throughput/full_matrix_finite_200k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(steps));
    for (label, mode) in [
        ("serial", ExecutionMode::Serial),
        ("single_pass", ExecutionMode::SinglePass),
        ("sharded", ExecutionMode::Sharded { workers }),
        ("pipelined_1", ExecutionMode::Pipelined { workers: 1 }),
        ("pipelined", ExecutionMode::Pipelined { workers }),
    ] {
        group.bench_function(label, |b| b.iter(|| exp.run_with(mode).unwrap()));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generator,
    bench_trace_io,
    bench_corpus_decode,
    bench_protocols,
    bench_oracle_overhead,
    bench_execution_modes,
    bench_execution_modes_finite
);
criterion_main!(benches);
