//! Criterion benches for the paper's figures and sensitivity analyses:
//! each bench times the computation behind one figure and prints the
//! reproduced artifact once.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dirsim::paper;
use dirsim::prelude::*;
use dirsim::report;

const REFS: usize = 50_000;

/// Figure 1: the invalidation fan-out histogram (Dir0B state model).
fn bench_figure1(c: &mut Criterion) {
    let results = paper::headline_experiment(REFS).run().unwrap();
    println!("{}", report::render_figure1(&results, Scheme::dir0_b()));
    let pops = Scenario::named("pops").expect("bundled");
    let refs: Vec<MemRef> = pops.workload().take(REFS).collect();
    c.bench_function("fig1/fanout_histogram", |b| {
        b.iter_batched(
            || Scheme::Directory(DirSpec::dir0_b()).build(4),
            |mut protocol| {
                let r = Simulator::paper()
                    .run(protocol.as_mut(), refs.iter().copied())
                    .unwrap();
                std::hint::black_box(r.fanout.fraction_at_most(1))
            },
            BatchSize::SmallInput,
        )
    });
}

/// Figures 2–5 share the headline simulation; bench the derived metrics.
fn bench_figures_2_to_5(c: &mut Criterion) {
    let results = paper::headline_experiment(REFS).run().unwrap();
    println!("{}", report::render_figure2(&results));
    println!("{}", report::render_figure3(&results));
    println!(
        "{}",
        report::render_figure4(&results, CostModel::pipelined())
    );
    println!(
        "{}",
        report::render_figure5(&results, CostModel::pipelined())
    );
    c.bench_function("fig2-5/render_all", |b| {
        b.iter(|| {
            let mut total = 0usize;
            total += report::render_figure2(&results).len();
            total += report::render_figure3(&results).len();
            total += report::render_figure4(&results, CostModel::pipelined()).len();
            total += report::render_figure5(&results, CostModel::pipelined()).len();
            std::hint::black_box(total)
        })
    });
}

/// §5.1 and §6b: cost-model sweeps are pure repricing — the paper's
/// "one simulation run per protocol" payoff.
fn bench_sweeps(c: &mut Criterion) {
    let results = paper::extended_experiment(REFS).run().unwrap();
    let qs = [0.0, 0.5, 1.0, 2.0, 4.0];
    let lines: Vec<(String, Vec<(f64, f64)>)> = results
        .per_scheme
        .iter()
        .map(|s| {
            (
                s.scheme.name(),
                paper::q_sensitivity(&s.combined, CostModel::pipelined(), &qs),
            )
        })
        .collect();
    println!("{}", report::render_q_sweep(&lines));
    let dir1b = results[Scheme::dir1_b()].combined.clone();
    let points = paper::broadcast_sensitivity(&dir1b, &[1, 2, 4, 8, 16, 32]);
    println!("{}", report::render_broadcast_sweep("Dir1B", &points));

    c.bench_function("sec5.1/q_sweep_reprice", |b| {
        b.iter(|| {
            let pts = paper::q_sensitivity(&dir1b, CostModel::pipelined(), &qs);
            std::hint::black_box(pts.len())
        })
    });
    c.bench_function("sec6b/broadcast_reprice", |b| {
        b.iter(|| {
            let pts = paper::broadcast_sensitivity(&dir1b, &[1, 2, 4, 8, 16, 32]);
            std::hint::black_box(pts.len())
        })
    });
}

/// §5.2: the lock ablation needs a full resimulation with filtering.
fn bench_lock_impact(c: &mut Criterion) {
    let impacts = paper::lock_impact(
        REFS,
        vec![
            Scheme::Directory(DirSpec::dir1_nb()),
            Scheme::Directory(DirSpec::dir0_b()),
        ],
    )
    .unwrap();
    println!("{}", report::render_lock_impact(&impacts));
    let mut group = c.benchmark_group("sec5.2/lock_impact");
    group.sample_size(10);
    group.bench_function("dir1nb_20k", |b| {
        b.iter(|| paper::lock_impact(20_000, vec![Scheme::Directory(DirSpec::dir1_nb())]).unwrap())
    });
    group.finish();
}

/// §6c: the pointer sweep / scaling study.
fn bench_pointer_sweep(c: &mut Criterion) {
    for n in [4u16, 16] {
        let rows = paper::pointer_sweep(n, REFS, &[1, 2, 4]).unwrap();
        println!("{}", report::render_pointer_sweep(n, &rows));
    }
    let mut group = c.benchmark_group("sec6c/pointer_sweep");
    group.sample_size(10);
    group.bench_function("16p_20k", |b| {
        b.iter(|| paper::pointer_sweep(16, 20_000, &[1, 2]).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_figure1,
    bench_figures_2_to_5,
    bench_sweeps,
    bench_lock_impact,
    bench_pointer_sweep
);
criterion_main!(benches);
