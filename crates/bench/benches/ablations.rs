//! Ablation benches for design choices: block size, directory
//! organisation, eviction policy, and sharing attribution. Each group
//! prints the ablation table once, then times a representative
//! configuration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dirsim::prelude::*;
use dirsim::report::TextTable;
use dirsim_mem::BlockMap;
use dirsim_protocol::directory::EvictionPolicy;
const REFS: usize = 60_000;

fn refs_for(name: &str) -> Vec<MemRef> {
    Scenario::named(name)
        .expect("bundled")
        .workload()
        .take(REFS)
        .collect()
}

fn pops_config() -> WorkloadConfig {
    Scenario::named("pops").expect("bundled").config().clone()
}

/// Block size: larger blocks amortise fetch latency but magnify
/// invalidation cost and false sharing.
fn bench_block_size(c: &mut Criterion) {
    let refs = refs_for("pops");
    // A second workload where the only sharing is *false* sharing.
    let fs_cfg = WorkloadConfig {
        shared_frac: 0.05,
        sharing_mix: dirsim_trace::synth::SharingMix {
            read_mostly: 0.0,
            migratory: 0.0,
            producer_consumer: 0.0,
            false_sharing: 1.0,
        },
        seed: 0xab1a7e,
        ..pops_config()
    };
    let fs_refs: Vec<MemRef> = Workload::new(fs_cfg).take(REFS).collect();

    let mut table =
        TextTable::new("Ablation: block size (Dir0B, pipelined; fs = false-sharing workload)");
    table.headers([
        "block bytes",
        "cycles/ref",
        "miss rate",
        "fs cycles/ref",
        "fs miss rate",
    ]);
    for bytes in [4u32, 16, 64, 256] {
        let config = SimConfig {
            block_map: BlockMap::new(bytes).unwrap(),
            ..SimConfig::default()
        };
        let model = CostModel::pipelined().with_words_per_block((bytes / 4).max(1));
        let run = |stream: &[MemRef]| {
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(4);
            Simulator::new(config)
                .run(p.as_mut(), stream.iter().copied())
                .unwrap()
        };
        let result = run(&refs);
        let fs_result = run(&fs_refs);
        table.row([
            bytes.to_string(),
            format!("{:.4}", result.cycles_per_ref(model)),
            format!("{:.3}%", result.events.data_miss_rate() * 100.0),
            format!("{:.4}", fs_result.cycles_per_ref(model)),
            format!("{:.3}%", fs_result.events.data_miss_rate() * 100.0),
        ]);
    }
    println!("{}", table.render());

    c.bench_function("ablation/block_size_64B", |b| {
        let config = SimConfig {
            block_map: BlockMap::new(64).unwrap(),
            ..SimConfig::default()
        };
        b.iter_batched(
            || Scheme::Directory(DirSpec::dir0_b()).build(4),
            |mut p| {
                Simulator::new(config)
                    .run(p.as_mut(), refs.iter().copied())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Directory organisation at the same full-map protocol: Censier–Feautrier
/// indexed map vs Tang duplicate tags vs Yen & Fu single bits.
fn bench_directory_organisation(c: &mut Criterion) {
    let refs = refs_for("pops");
    let mut table =
        TextTable::new("Ablation: full-map directory organisation (POPS-like, pipelined)");
    table.headers(["organisation", "cycles/ref", "dir ops/kiloref"]);
    for scheme in [
        Scheme::Directory(DirSpec::dir_n_nb()),
        Scheme::Tang,
        Scheme::YenFu,
    ] {
        let mut p = scheme.build(4);
        let result = Simulator::paper()
            .run(p.as_mut(), refs.iter().copied())
            .unwrap();
        let dir_ops = result.ops[BusOp::DirLookup] + result.ops[BusOp::DirUpdate];
        table.row([
            scheme.name(),
            format!("{:.4}", result.cycles_per_ref(CostModel::pipelined())),
            format!("{:.2}", dir_ops as f64 * 1000.0 / result.refs as f64),
        ]);
    }
    println!("{}", table.render());

    c.bench_function("ablation/tang_organisation", |b| {
        b.iter_batched(
            || Scheme::Tang.build(4),
            |mut p| {
                Simulator::paper()
                    .run(p.as_mut(), refs.iter().copied())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Eviction policy for pointer-limited NB schemes.
fn bench_eviction_policy(c: &mut Criterion) {
    let refs = refs_for("thor");
    let mut table = TextTable::new("Ablation: Dir2NB eviction policy (THOR-like, pipelined)");
    table.headers(["policy", "cycles/ref", "coh. miss rate"]);
    for (name, policy) in [
        ("oldest-sharer", EvictionPolicy::OldestSharer),
        ("newest-sharer", EvictionPolicy::NewestSharer),
    ] {
        let spec = DirSpec::dir_i_nb(2).unwrap().with_eviction(policy);
        let mut p = Scheme::Directory(spec).build(4);
        let result = Simulator::paper()
            .run(p.as_mut(), refs.iter().copied())
            .unwrap();
        table.row([
            name.to_string(),
            format!("{:.4}", result.cycles_per_ref(CostModel::pipelined())),
            format!("{:.3}%", result.events.coherence_miss_rate() * 100.0),
        ]);
    }
    println!("{}", table.render());

    c.bench_function("ablation/eviction_oldest", |b| {
        b.iter_batched(
            || Scheme::Directory(DirSpec::dir_i_nb(2).unwrap()).build(4),
            |mut p| {
                Simulator::paper()
                    .run(p.as_mut(), refs.iter().copied())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Sharing attribution (§4.4): per-process vs per-processor with migration.
fn bench_sharing_attribution(c: &mut Criterion) {
    let cfg = WorkloadConfig {
        migration_prob: 0.001,
        ..pops_config()
    };
    let refs: Vec<MemRef> = Workload::new(cfg).take(REFS).collect();
    let mut table =
        TextTable::new("Ablation: sharing attribution with process migration (pipelined)");
    table.headers(["attribution", "cycles/ref", "coh. miss rate"]);
    for sharing in [SharingModel::PerProcess, SharingModel::PerProcessor] {
        let config = SimConfig {
            sharing,
            ..SimConfig::default()
        };
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(4);
        let result = Simulator::new(config)
            .run(p.as_mut(), refs.iter().copied())
            .unwrap();
        table.row([
            sharing.to_string(),
            format!("{:.4}", result.cycles_per_ref(CostModel::pipelined())),
            format!("{:.3}%", result.events.coherence_miss_rate() * 100.0),
        ]);
    }
    println!("{}", table.render());

    c.bench_function("ablation/per_processor_sharing", |b| {
        let config = SimConfig {
            sharing: SharingModel::PerProcessor,
            ..SimConfig::default()
        };
        b.iter_batched(
            || Scheme::Directory(DirSpec::dir0_b()).build(4),
            |mut p| {
                Simulator::new(config)
                    .run(p.as_mut(), refs.iter().copied())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// Finite caches (§4 extension): capacity sweep for Dir0B.
fn bench_finite_caches(c: &mut Criterion) {
    let rows = dirsim::paper::finite_cache_study(
        Scheme::Directory(DirSpec::dir0_b()),
        30_000,
        &[256, 1024, 4096],
    )
    .unwrap();
    println!("{}", dirsim::report::render_finite_cache("Dir0B", &rows));

    let mut group = c.benchmark_group("ablation/finite_cache");
    group.sample_size(10);
    group.bench_function("1024_blocks", |b| {
        b.iter(|| {
            dirsim::paper::finite_cache_study(Scheme::Directory(DirSpec::dir0_b()), 10_000, &[1024])
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_block_size,
    bench_directory_organisation,
    bench_eviction_policy,
    bench_sharing_attribution,
    bench_finite_caches
);
criterion_main!(benches);
