//! Microbenchmarks for the packed sharer-set representation: insert,
//! remove, membership, iteration, and popcount at system widths from 4
//! to 64 caches (the u64-bitmap fast path) and past 64 (the multi-word
//! spill path), so a representation change shows up as a per-op delta
//! rather than only as end-to-end engine drift.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use dirsim_mem::CacheId;
use dirsim_protocol::SharerSet;

/// System widths on the bitmap fast path (ids < 64) plus one width that
/// forces the multi-word spill (ids >= 64).
const WIDTHS: [u32; 5] = [4, 16, 64, 128, 256];

const OPS: usize = 4_096;

/// A deterministic id sequence cycling through `width` caches with an
/// odd stride, so consecutive ops rarely hit the same id.
fn ids(width: u32) -> Vec<CacheId> {
    let stride = (width / 2) | 1;
    (0..OPS as u32)
        .map(|i| CacheId::new((i * stride) % width))
        .collect()
}

fn full_set(width: u32) -> SharerSet {
    (0..width).map(CacheId::new).collect()
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharer_set/insert_remove");
    group.throughput(Throughput::Elements(OPS as u64));
    for width in WIDTHS {
        let seq = ids(width);
        group.bench_function(&format!("width{width}"), |b| {
            b.iter_batched(
                SharerSet::new,
                |mut set| {
                    for (i, &id) in seq.iter().enumerate() {
                        if i % 3 == 2 {
                            set.remove(id);
                        } else {
                            set.insert(id);
                        }
                    }
                    std::hint::black_box(set.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_contains(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharer_set/contains");
    group.throughput(Throughput::Elements(OPS as u64));
    for width in WIDTHS {
        let set = full_set(width);
        let seq = ids(width);
        group.bench_function(&format!("width{width}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &id in &seq {
                    hits += usize::from(set.contains(id));
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_iterate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharer_set/iterate");
    for width in WIDTHS {
        let set = full_set(width);
        group.throughput(Throughput::Elements(u64::from(width)));
        group.bench_function(&format!("width{width}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for id in set.iter() {
                    acc = acc.wrapping_add(id.index());
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharer_set/count");
    for width in WIDTHS {
        let set = full_set(width);
        let except = CacheId::new(width / 2);
        group.bench_function(&format!("width{width}"), |b| {
            b.iter(|| std::hint::black_box(set.len() + set.count_others(except)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_remove,
    bench_contains,
    bench_iterate,
    bench_count
);
criterion_main!(benches);
