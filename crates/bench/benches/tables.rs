//! Criterion benches for the paper's tables: each bench times the
//! simulation that regenerates one table, and prints the reproduced table
//! once so `cargo bench` output doubles as a reproduction artifact.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dirsim::prelude::*;
use dirsim::report;
use dirsim::{Experiment, NamedWorkload};

const REFS: usize = 50_000;

fn materialise(scenario: &Scenario, refs: usize) -> Vec<MemRef> {
    scenario.workload().take(refs).collect()
}

fn pops() -> &'static Scenario {
    Scenario::named("pops").expect("bundled")
}

/// Table 3 is pure trace generation + statistics.
fn bench_table3(c: &mut Criterion) {
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    println!("{}", report::render_table3(&results));
    c.bench_function("table3/trace_stats", |b| {
        b.iter_batched(
            || pops().workload().take(REFS),
            TraceStats::from_refs,
            BatchSize::SmallInput,
        )
    });
}

/// Table 4: one event-frequency simulation per scheme.
fn bench_table4(c: &mut Criterion) {
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    println!("{}", report::render_table4(&results));
    let refs = materialise(pops(), REFS);
    let mut group = c.benchmark_group("table4/event_frequencies");
    for scheme in Scheme::paper_lineup() {
        group.bench_function(&scheme.name(), |b| {
            b.iter_batched(
                || scheme.build(4),
                |mut protocol| {
                    Simulator::paper()
                        .run(protocol.as_mut(), refs.iter().copied())
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Table 5: simulation plus cost aggregation under both bus models.
fn bench_table5(c: &mut Criterion) {
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    println!(
        "{}",
        report::render_table5(&results, CostModel::pipelined())
    );
    println!(
        "{}",
        report::render_table5(&results, CostModel::non_pipelined())
    );
    // Cost application is the cheap part (the paper's point): bench it.
    let dir0b = results[Scheme::dir0_b()].combined.clone();
    c.bench_function("table5/price_ops", |b| {
        b.iter(|| {
            let bd = dir0b.breakdown(CostModel::pipelined());
            std::hint::black_box(bd.cycles_per_ref())
        })
    });
}

/// End-to-end: the whole headline experiment matrix.
fn bench_full_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables/full_headline_matrix");
    group.sample_size(10);
    group.bench_function("3traces_x_4schemes", |b| {
        b.iter(|| {
            Experiment::new()
                .workloads(dirsim::paper::paper_workloads())
                .schemes(Scheme::paper_lineup())
                .refs_per_trace(20_000)
                .run()
                .unwrap()
        })
    });
    group.finish();
    // Exercise a custom workload too, so the harness covers the builder.
    let cfg = WorkloadConfig::builder().seed(3).build().unwrap();
    let mut group = c.benchmark_group("tables/custom_workload");
    group.sample_size(10);
    group.bench_function("dir0b_20k", |b| {
        b.iter(|| {
            Experiment::new()
                .workload(NamedWorkload::new("custom", cfg.clone()))
                .scheme(Scheme::Directory(DirSpec::dir0_b()))
                .refs_per_trace(20_000)
                .run()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table3,
    bench_table4,
    bench_table5,
    bench_full_matrix
);
criterion_main!(benches);
