//! Property tests for the cost models: derivation invariants and
//! aggregation algebra.

use proptest::prelude::*;

use dirsim_cost::{BusKind, BusTiming, CostBreakdown, CostCategory, CostModel};
use dirsim_protocol::{BusOp, OpCounts};

fn arbitrary_ops() -> impl Strategy<Value = OpCounts> {
    prop::collection::vec((0..9usize, 0u64..1000), 0..20).prop_map(|pairs| {
        let mut ops = OpCounts::new();
        for (i, n) in pairs {
            ops.record(BusOp::ALL[i], n);
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The non-pipelined bus never beats the pipelined bus on any op.
    #[test]
    fn non_pipelined_dominates(op_idx in 0..9usize) {
        let op = BusOp::ALL[op_idx];
        let pipe = CostModel::pipelined().op_cost(op);
        let nonpipe = CostModel::non_pipelined().op_cost(op);
        prop_assert!(nonpipe >= pipe, "{op}: {nonpipe} < {pipe}");
        prop_assert!(pipe > 0, "every op occupies at least one cycle");
    }

    /// Costs derive monotonically from the primitive timings.
    #[test]
    fn costs_monotone_in_timings(extra in 0u32..5, op_idx in 0..9usize) {
        let op = BusOp::ALL[op_idx];
        let base = BusTiming::PAPER;
        let slower = BusTiming {
            transfer_word: base.transfer_word + extra,
            invalidate: base.invalidate + extra,
            wait_directory: base.wait_directory + extra,
            wait_memory: base.wait_memory + extra,
            wait_cache: base.wait_cache + extra,
            send_address: base.send_address + extra,
        };
        for kind in BusKind::ALL {
            let a = CostModel::new(kind, base).op_cost(op);
            let b = CostModel::new(kind, slower).op_cost(op);
            prop_assert!(b >= a);
        }
    }

    /// Broadcast cost only affects broadcast invalidations.
    #[test]
    fn broadcast_cost_is_isolated(b in 1u32..100, op_idx in 0..9usize) {
        let op = BusOp::ALL[op_idx];
        let base = CostModel::pipelined();
        let wide = base.with_broadcast_cost(b);
        if op == BusOp::BroadcastInvalidate {
            prop_assert_eq!(wide.op_cost(op), b);
        } else {
            prop_assert_eq!(wide.op_cost(op), base.op_cost(op));
        }
    }

    /// Cycles/ref equals the op-weighted sum divided by refs, exactly.
    #[test]
    fn pricing_is_exact(ops in arbitrary_ops(), refs in 1u64..1_000_000) {
        let model = CostModel::pipelined();
        let bd = CostBreakdown::price(&ops, refs, 0, model);
        let expected: f64 = ops
            .iter()
            .map(|(op, n)| n as f64 * f64::from(model.op_cost(op)))
            .sum::<f64>()
            / refs as f64;
        prop_assert!((bd.cycles_per_ref() - expected).abs() < 1e-9);
    }

    /// Category cycles partition the total.
    #[test]
    fn categories_partition_total(ops in arbitrary_ops(), refs in 1u64..100_000) {
        let bd = CostBreakdown::price(&ops, refs, 0, CostModel::non_pipelined());
        let sum: f64 = CostCategory::ALL.iter().map(|&c| bd[c]).sum();
        prop_assert!((sum - bd.cycles_per_ref()).abs() < 1e-9);
    }

    /// Fractions sum to 1 whenever any cost exists.
    #[test]
    fn fractions_normalise(ops in arbitrary_ops(), refs in 1u64..100_000) {
        let bd = CostBreakdown::price(&ops, refs, 0, CostModel::pipelined());
        let sum: f64 = bd.fractions().iter().map(|(_, f)| f).sum();
        if bd.cycles_per_ref() > 0.0 {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(sum, 0.0);
        }
    }

    /// The overhead model is monotone and affine in q.
    #[test]
    fn overhead_monotone_affine(
        ops in arbitrary_ops(),
        refs in 1u64..100_000,
        txns_frac in 0.0f64..1.0,
        q1 in 0.0f64..10.0,
        q2 in 0.0f64..10.0,
    ) {
        let txns = (refs as f64 * txns_frac) as u64;
        let bd = CostBreakdown::price(&ops, refs, txns, CostModel::pipelined());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            bd.cycles_per_ref_with_overhead(lo) <= bd.cycles_per_ref_with_overhead(hi) + 1e-12
        );
        // Affine: midpoint interpolates.
        let mid = (lo + hi) / 2.0;
        let interp = (bd.cycles_per_ref_with_overhead(lo)
            + bd.cycles_per_ref_with_overhead(hi))
            / 2.0;
        prop_assert!((bd.cycles_per_ref_with_overhead(mid) - interp).abs() < 1e-9);
    }

    /// Block size scales fetch-class ops linearly and leaves word ops alone.
    #[test]
    fn block_size_scaling(words in 1u32..64) {
        let base = CostModel::pipelined();
        let scaled = base.with_words_per_block(words);
        prop_assert_eq!(scaled.op_cost(BusOp::MemRead), 1 + words);
        prop_assert_eq!(scaled.op_cost(BusOp::WriteBack), words);
        prop_assert_eq!(scaled.op_cost(BusOp::WriteThrough), 1);
        prop_assert_eq!(scaled.op_cost(BusOp::Invalidate), 1);
    }

    /// Network model: directed traffic never exceeds snoopy traffic for
    /// the same op, on any topology and size.
    #[test]
    fn network_directory_never_worse_than_snoopy(
        nodes in 1u32..512,
        op_idx in 0..9usize,
        topo_idx in 0..3usize,
    ) {
        use dirsim_cost::network::{NetworkModel, Placement, Topology};
        let op = BusOp::ALL[op_idx];
        let model = NetworkModel::new(Topology::ALL[topo_idx], nodes);
        let dir = model.op_traffic(op, Placement::Directory);
        let snoop = model.op_traffic(op, Placement::Snoopy);
        prop_assert!(dir <= snoop + 1e-9, "{op} on n={nodes}: dir {dir} > snoopy {snoop}");
        prop_assert!(dir >= 0.0 && snoop.is_finite());
    }

    /// Network model: flood cost is monotone in node count off the bus,
    /// and bus flood cost is constant.
    #[test]
    fn network_flood_monotone(a in 1u32..256, b in 1u32..256) {
        use dirsim_cost::network::{NetworkModel, Topology};
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for topo in [Topology::Crossbar, Topology::Mesh2D] {
            let fl = NetworkModel::new(topo, lo).flood_cost();
            let fh = NetworkModel::new(topo, hi).flood_cost();
            prop_assert!(fl <= fh);
        }
        prop_assert_eq!(NetworkModel::new(Topology::Bus, lo).flood_cost(), 1.0);
        prop_assert_eq!(NetworkModel::new(Topology::Bus, hi).flood_cost(), 1.0);
    }

    /// Network traffic-per-ref is linear in operation counts.
    #[test]
    fn network_traffic_is_linear(ops in arbitrary_ops(), refs in 1u64..100_000) {
        use dirsim_cost::network::{NetworkModel, Placement, Topology};
        let model = NetworkModel::new(Topology::Mesh2D, 64);
        let single = model.traffic_per_ref(&ops, refs, Placement::Directory);
        let mut doubled = ops;
        doubled.merge(&ops);
        let double = model.traffic_per_ref(&doubled, refs, Placement::Directory);
        prop_assert!((double - 2.0 * single).abs() < 1e-6);
    }

    /// Saturation bound scales inversely with traffic.
    #[test]
    fn network_saturation_inverse(traffic in 0.001f64..10.0) {
        use dirsim_cost::network::{NetworkModel, Topology};
        let model = NetworkModel::new(Topology::Crossbar, 16);
        let p1 = model.saturation_processors(traffic, 1.0);
        let p2 = model.saturation_processors(2.0 * traffic, 1.0);
        prop_assert!((p1 / p2 - 2.0).abs() < 1e-9);
    }
}
