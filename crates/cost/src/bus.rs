//! Bus timing and cost models (§4.3, Tables 1 and 2).
//!
//! The paper prices every bus operation from a small table of primitive
//! timings (Table 1) under two bus organisations:
//!
//! * **Pipelined** — separate address and data paths; the bus is not held
//!   during memory/directory waits.
//! * **Non-pipelined** — multiplexed address/data; waits occupy the bus.
//!
//! [`CostModel::op_cost`] reproduces Table 2 exactly:
//!
//! | operation          | pipelined | non-pipelined |
//! |--------------------|-----------|---------------|
//! | memory access      | 5         | 7             |
//! | cache access       | 5         | 6             |
//! | write-back         | 4         | 4             |
//! | write-through/upd  | 1         | 2             |
//! | directory check    | 1         | 3             |
//! | invalidate         | 1         | 1             |
//!
//! Broadcast invalidation defaults to the single-invalidate cost (the
//! paper's simplifying assumption) and can be widened to `b` cycles for the
//! §6 sensitivity analysis via [`CostModel::with_broadcast_cost`].

use std::fmt;

use dirsim_protocol::BusOp;

/// Primitive bus-operation timings (the paper's Table 1), in bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTiming {
    /// Transfer of one data word (32 bits).
    pub transfer_word: u32,
    /// A single invalidation message.
    pub invalidate: u32,
    /// Wait for a directory access (non-pipelined bus holds the bus).
    pub wait_directory: u32,
    /// Wait for a memory access.
    pub wait_memory: u32,
    /// Wait for a cache access.
    pub wait_cache: u32,
    /// Sending an address.
    pub send_address: u32,
}

impl BusTiming {
    /// The paper's Table 1 values.
    pub const PAPER: BusTiming = BusTiming {
        transfer_word: 1,
        invalidate: 1,
        wait_directory: 2,
        wait_memory: 2,
        wait_cache: 1,
        send_address: 1,
    };
}

impl Default for BusTiming {
    fn default() -> Self {
        BusTiming::PAPER
    }
}

/// Bus organisation (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// Separate address/data paths; the bus is released during waits.
    Pipelined,
    /// Multiplexed address/data; waits hold the bus.
    NonPipelined,
}

impl BusKind {
    /// Both organisations, pipelined first (the paper's presentation
    /// order: bars run from pipelined low-end to non-pipelined high-end).
    pub const ALL: [BusKind; 2] = [BusKind::Pipelined, BusKind::NonPipelined];
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Pipelined => f.write_str("pipelined"),
            BusKind::NonPipelined => f.write_str("non-pipelined"),
        }
    }
}

/// A complete cost model: prices every [`BusOp`] in bus cycles.
///
/// # Examples
///
/// ```
/// use dirsim_cost::{BusKind, CostModel};
/// use dirsim_protocol::BusOp;
///
/// let pipelined = CostModel::pipelined();
/// assert_eq!(pipelined.op_cost(BusOp::MemRead), 5);
/// let nonpipe = CostModel::non_pipelined();
/// assert_eq!(nonpipe.op_cost(BusOp::MemRead), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    kind: BusKind,
    timing: BusTiming,
    /// Data words per block (4 in the paper: 16-byte blocks, 32-bit words).
    words_per_block: u32,
    /// Cost of a broadcast invalidation (`b` in §6); defaults to the
    /// single-invalidate cost.
    broadcast_cost: u32,
}

impl CostModel {
    /// The paper's pipelined-bus model.
    pub fn pipelined() -> Self {
        CostModel::new(BusKind::Pipelined, BusTiming::PAPER)
    }

    /// The paper's non-pipelined-bus model.
    pub fn non_pipelined() -> Self {
        CostModel::new(BusKind::NonPipelined, BusTiming::PAPER)
    }

    /// A model for the given organisation and primitive timings.
    pub fn new(kind: BusKind, timing: BusTiming) -> Self {
        CostModel {
            kind,
            timing,
            words_per_block: 4,
            broadcast_cost: timing.invalidate,
        }
    }

    /// The model for a [`BusKind`] with paper timings.
    pub fn for_kind(kind: BusKind) -> Self {
        CostModel::new(kind, BusTiming::PAPER)
    }

    /// Overrides the broadcast-invalidation cost (`b`, §6).
    pub fn with_broadcast_cost(mut self, b: u32) -> Self {
        self.broadcast_cost = b;
        self
    }

    /// Overrides the block size in words.
    pub fn with_words_per_block(mut self, words: u32) -> Self {
        self.words_per_block = words;
        self
    }

    /// The bus organisation.
    pub fn kind(self) -> BusKind {
        self.kind
    }

    /// The broadcast cost `b`.
    pub fn broadcast_cost(self) -> u32 {
        self.broadcast_cost
    }

    /// Cost of one bus operation in bus cycles (Table 2).
    pub fn op_cost(self, op: BusOp) -> u32 {
        let t = self.timing;
        let words = self.words_per_block;
        match (self.kind, op) {
            // A block fetch: address, then the data words; the
            // non-pipelined bus also holds the bus during the wait.
            (BusKind::Pipelined, BusOp::MemRead) => t.send_address + words * t.transfer_word,
            (BusKind::NonPipelined, BusOp::MemRead) => {
                t.send_address + t.wait_memory + words * t.transfer_word
            }
            (BusKind::Pipelined, BusOp::CacheSupply) => t.send_address + words * t.transfer_word,
            (BusKind::NonPipelined, BusOp::CacheSupply) => {
                t.send_address + t.wait_cache + words * t.transfer_word
            }
            // Write-back: address goes out with the first data word; the
            // memory-side write proceeds off the bus (interleaved memory).
            (_, BusOp::WriteBack) => words * t.transfer_word,
            // Write-through / write-update move one word.
            (BusKind::Pipelined, BusOp::WriteThrough | BusOp::WriteUpdate) => t.transfer_word,
            (BusKind::NonPipelined, BusOp::WriteThrough | BusOp::WriteUpdate) => {
                t.send_address + t.transfer_word
            }
            // A directory check that could not overlap a memory access.
            (BusKind::Pipelined, BusOp::DirLookup) => t.send_address,
            (BusKind::NonPipelined, BusOp::DirLookup) => t.send_address + t.wait_directory,
            // A dataless state-update message occupies the bus like a
            // single invalidation (Yen & Fu single-bit maintenance).
            (_, BusOp::DirUpdate) => t.invalidate,
            (_, BusOp::Invalidate) => t.invalidate,
            (_, BusOp::BroadcastInvalidate) => self.broadcast_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_matches_table_2() {
        let m = CostModel::pipelined();
        assert_eq!(m.op_cost(BusOp::MemRead), 5);
        assert_eq!(m.op_cost(BusOp::CacheSupply), 5);
        assert_eq!(m.op_cost(BusOp::WriteBack), 4);
        assert_eq!(m.op_cost(BusOp::WriteThrough), 1);
        assert_eq!(m.op_cost(BusOp::WriteUpdate), 1);
        assert_eq!(m.op_cost(BusOp::DirLookup), 1);
        assert_eq!(m.op_cost(BusOp::Invalidate), 1);
        assert_eq!(m.op_cost(BusOp::BroadcastInvalidate), 1);
    }

    #[test]
    fn non_pipelined_matches_table_2() {
        let m = CostModel::non_pipelined();
        assert_eq!(m.op_cost(BusOp::MemRead), 7);
        assert_eq!(m.op_cost(BusOp::CacheSupply), 6);
        assert_eq!(m.op_cost(BusOp::WriteBack), 4);
        assert_eq!(m.op_cost(BusOp::WriteThrough), 2);
        assert_eq!(m.op_cost(BusOp::WriteUpdate), 2);
        assert_eq!(m.op_cost(BusOp::DirLookup), 3);
        assert_eq!(m.op_cost(BusOp::Invalidate), 1);
    }

    #[test]
    fn broadcast_cost_is_parameterisable() {
        let m = CostModel::pipelined().with_broadcast_cost(8);
        assert_eq!(m.op_cost(BusOp::BroadcastInvalidate), 8);
        assert_eq!(m.op_cost(BusOp::Invalidate), 1, "directed unchanged");
    }

    #[test]
    fn block_size_scales_fetches() {
        let m = CostModel::pipelined().with_words_per_block(8);
        assert_eq!(m.op_cost(BusOp::MemRead), 9);
        assert_eq!(m.op_cost(BusOp::WriteBack), 8);
    }

    #[test]
    fn for_kind_matches_constructors() {
        assert_eq!(
            CostModel::for_kind(BusKind::Pipelined),
            CostModel::pipelined()
        );
        assert_eq!(
            CostModel::for_kind(BusKind::NonPipelined),
            CostModel::non_pipelined()
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(BusKind::Pipelined.to_string(), "pipelined");
        assert_eq!(BusKind::NonPipelined.to_string(), "non-pipelined");
    }

    #[test]
    fn paper_timing_is_default() {
        assert_eq!(BusTiming::default(), BusTiming::PAPER);
    }
}
