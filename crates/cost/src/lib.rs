//! # dirsim-cost
//!
//! Bus cost models for the directory-scheme evaluation (§4.3 of the paper):
//! primitive bus timings (Table 1), the pipelined and non-pipelined cost
//! derivations (Table 2), and aggregation of priced bus operations into the
//! paper's metrics — bus cycles per reference, the Table 5 category
//! breakdown, the Figure 5 per-transaction view, and the §5.1 fixed-overhead
//! extension.
//!
//! The split between *event frequencies* (measured once per protocol by the
//! simulator) and *costs* (applied afterwards) is the paper's own
//! methodology: "since the choice of the hardware model is independent of
//! the event frequencies, we need just one simulation run per protocol".
//!
//! ```
//! use dirsim_cost::{CostBreakdown, CostModel};
//! use dirsim_protocol::{BusOp, OpCounts};
//!
//! let mut ops = OpCounts::new();
//! ops.record(BusOp::MemRead, 62);        // e.g. 0.62% misses over 10k refs
//! ops.record(BusOp::BroadcastInvalidate, 4);
//! let breakdown = CostBreakdown::price(&ops, 10_000, 66, CostModel::pipelined());
//! assert!(breakdown.cycles_per_ref() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod bus;
pub mod network;

pub use aggregate::{CostBreakdown, CostCategory};
pub use bus::{BusKind, BusTiming, CostModel};
pub use network::{NetworkModel, Placement, Topology};
