//! Cost aggregation: from operation counts to the paper's metrics.
//!
//! The headline metric is **bus cycles per memory reference** (§4.1). Costs
//! are broken down into the five categories of Table 5 / Figure 4
//! ([`CostCategory`]), and the per-transaction view of Figure 5 and the
//! §5.1 fixed-overhead model are derived from the same data.

use std::fmt;
use std::ops::Index;

use dirsim_protocol::{BusOp, OpCounts};

use crate::bus::CostModel;

/// Table 5 / Figure 4 cost categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostCategory {
    /// Block fetches from memory or another cache (`memacc`).
    MemAccess,
    /// Dirty-block flushes (`wb`).
    WriteBack,
    /// Directed and broadcast invalidations (`inv`).
    Invalidate,
    /// Write-throughs and write-updates (`wt or wup`).
    WtOrWup,
    /// Unoverlapped directory accesses (`dir`).
    DirAccess,
}

impl CostCategory {
    /// All categories in Table 5 row order.
    pub const ALL: [CostCategory; 5] = [
        CostCategory::MemAccess,
        CostCategory::WriteBack,
        CostCategory::Invalidate,
        CostCategory::WtOrWup,
        CostCategory::DirAccess,
    ];

    /// The category an operation's cycles are reported under.
    pub fn of(op: BusOp) -> CostCategory {
        match op {
            BusOp::MemRead | BusOp::CacheSupply => CostCategory::MemAccess,
            BusOp::WriteBack => CostCategory::WriteBack,
            BusOp::Invalidate | BusOp::BroadcastInvalidate => CostCategory::Invalidate,
            BusOp::WriteThrough | BusOp::WriteUpdate => CostCategory::WtOrWup,
            BusOp::DirLookup | BusOp::DirUpdate => CostCategory::DirAccess,
        }
    }

    /// Short name used in tables (`mem access`, `write-back`, …).
    pub fn name(self) -> &'static str {
        match self {
            CostCategory::MemAccess => "mem access",
            CostCategory::WriteBack => "write-back",
            CostCategory::Invalidate => "invalidate",
            CostCategory::WtOrWup => "wt or wup",
            CostCategory::DirAccess => "dir access",
        }
    }

    fn ordinal(self) -> usize {
        match self {
            CostCategory::MemAccess => 0,
            CostCategory::WriteBack => 1,
            CostCategory::Invalidate => 2,
            CostCategory::WtOrWup => 3,
            CostCategory::DirAccess => 4,
        }
    }
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bus cycles per memory reference, broken down by [`CostCategory`].
///
/// Built by pricing a simulation's [`OpCounts`] under a [`CostModel`] and
/// normalising by the reference count.
///
/// # Examples
///
/// ```
/// use dirsim_cost::{CostBreakdown, CostModel};
/// use dirsim_protocol::{BusOp, OpCounts};
///
/// let mut ops = OpCounts::new();
/// ops.record(BusOp::MemRead, 10); // ten misses
/// // 1000 references, 10 of which were bus transactions:
/// let bd = CostBreakdown::price(&ops, 1000, 10, CostModel::pipelined());
/// assert!((bd.cycles_per_ref() - 0.05).abs() < 1e-12); // 10×5 / 1000
/// assert!((bd.cycles_per_transaction() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Cycles per reference, per category.
    per_ref: [f64; 5],
    /// Total references the ops were accumulated over.
    refs: u64,
    /// References that caused at least one bus operation.
    transactions: u64,
}

impl CostBreakdown {
    /// Prices operation counts under a cost model.
    ///
    /// `refs` is the total number of references simulated (instructions
    /// included, matching the paper's per-reference normalisation);
    /// `transactions` is the number of references that used the bus.
    ///
    /// # Panics
    ///
    /// Panics if `refs == 0`.
    pub fn price(ops: &OpCounts, refs: u64, transactions: u64, model: CostModel) -> Self {
        assert!(refs > 0, "cannot normalise over zero references");
        let mut per_ref = [0.0f64; 5];
        for (op, count) in ops.iter() {
            let cycles = count as f64 * f64::from(model.op_cost(op));
            per_ref[CostCategory::of(op).ordinal()] += cycles / refs as f64;
        }
        CostBreakdown {
            per_ref,
            refs,
            transactions,
        }
    }

    /// Total bus cycles per memory reference — the paper's headline metric.
    pub fn cycles_per_ref(&self) -> f64 {
        self.per_ref.iter().sum()
    }

    /// Bus transactions per reference (the §5.1 slope against fixed
    /// overhead `q`).
    pub fn transactions_per_ref(&self) -> f64 {
        self.transactions as f64 / self.refs as f64
    }

    /// Average bus cycles per bus transaction (Figure 5).
    ///
    /// Returns 0 when no transaction occurred.
    pub fn cycles_per_transaction(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.cycles_per_ref() * self.refs as f64 / self.transactions as f64
        }
    }

    /// Cycles per reference if every bus transaction carried `q` extra
    /// cycles of fixed overhead (arbitration, cache lookup, controller
    /// propagation — §5.1).
    pub fn cycles_per_ref_with_overhead(&self, q: f64) -> f64 {
        self.cycles_per_ref() + q * self.transactions_per_ref()
    }

    /// Each category's share of the total (Figure 4). All zeros when the
    /// total is zero.
    pub fn fractions(&self) -> [(CostCategory, f64); 5] {
        let total = self.cycles_per_ref();
        let mut out = [(CostCategory::MemAccess, 0.0); 5];
        for (i, cat) in CostCategory::ALL.iter().enumerate() {
            let frac = if total == 0.0 {
                0.0
            } else {
                self.per_ref[cat.ordinal()] / total
            };
            out[i] = (*cat, frac);
        }
        out
    }

    /// Number of references this breakdown covers.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Number of bus transactions this breakdown covers.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

impl Index<CostCategory> for CostBreakdown {
    type Output = f64;

    fn index(&self, cat: CostCategory) -> &f64 {
        &self.per_ref[cat.ordinal()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> OpCounts {
        let mut ops = OpCounts::new();
        ops.record(BusOp::MemRead, 10); // 50 cycles pipelined
        ops.record(BusOp::WriteBack, 5); // 20
        ops.record(BusOp::Invalidate, 3); // 3
        ops.record(BusOp::BroadcastInvalidate, 2); // 2
        ops.record(BusOp::WriteThrough, 4); // 4
        ops.record(BusOp::DirLookup, 6); // 6
        ops
    }

    #[test]
    fn category_of_every_op() {
        assert_eq!(CostCategory::of(BusOp::MemRead), CostCategory::MemAccess);
        assert_eq!(
            CostCategory::of(BusOp::CacheSupply),
            CostCategory::MemAccess
        );
        assert_eq!(CostCategory::of(BusOp::WriteBack), CostCategory::WriteBack);
        assert_eq!(
            CostCategory::of(BusOp::Invalidate),
            CostCategory::Invalidate
        );
        assert_eq!(
            CostCategory::of(BusOp::BroadcastInvalidate),
            CostCategory::Invalidate
        );
        assert_eq!(CostCategory::of(BusOp::WriteThrough), CostCategory::WtOrWup);
        assert_eq!(CostCategory::of(BusOp::WriteUpdate), CostCategory::WtOrWup);
        assert_eq!(CostCategory::of(BusOp::DirLookup), CostCategory::DirAccess);
    }

    #[test]
    fn pricing_sums_categories() {
        let bd = CostBreakdown::price(&sample_ops(), 1000, 20, CostModel::pipelined());
        // 50+20+5+4+6 = 85 cycles over 1000 refs.
        assert!((bd.cycles_per_ref() - 0.085).abs() < 1e-12);
        assert!((bd[CostCategory::MemAccess] - 0.050).abs() < 1e-12);
        assert!((bd[CostCategory::WriteBack] - 0.020).abs() < 1e-12);
        assert!((bd[CostCategory::Invalidate] - 0.005).abs() < 1e-12);
        assert!((bd[CostCategory::WtOrWup] - 0.004).abs() < 1e-12);
        assert!((bd[CostCategory::DirAccess] - 0.006).abs() < 1e-12);
    }

    #[test]
    fn per_transaction_view() {
        let bd = CostBreakdown::price(&sample_ops(), 1000, 20, CostModel::pipelined());
        assert!((bd.transactions_per_ref() - 0.02).abs() < 1e-12);
        assert!((bd.cycles_per_transaction() - 85.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_model_is_linear() {
        let bd = CostBreakdown::price(&sample_ops(), 1000, 20, CostModel::pipelined());
        let base = bd.cycles_per_ref();
        let slope = bd.transactions_per_ref();
        for q in [0.0, 1.0, 2.5] {
            assert!((bd.cycles_per_ref_with_overhead(q) - (base + slope * q)).abs() < 1e-12);
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let bd = CostBreakdown::price(&sample_ops(), 1000, 20, CostModel::pipelined());
        let sum: f64 = bd.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ops_zero_cost() {
        let bd = CostBreakdown::price(&OpCounts::new(), 100, 0, CostModel::pipelined());
        assert_eq!(bd.cycles_per_ref(), 0.0);
        assert_eq!(bd.cycles_per_transaction(), 0.0);
        let sum: f64 = bd.fractions().iter().map(|(_, f)| f).sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero references")]
    fn zero_refs_panics() {
        let _ = CostBreakdown::price(&OpCounts::new(), 0, 0, CostModel::pipelined());
    }

    #[test]
    fn non_pipelined_costs_more() {
        let ops = sample_ops();
        let pipe = CostBreakdown::price(&ops, 1000, 20, CostModel::pipelined());
        let nonpipe = CostBreakdown::price(&ops, 1000, 20, CostModel::non_pipelined());
        assert!(nonpipe.cycles_per_ref() > pipe.cycles_per_ref());
    }

    #[test]
    fn category_names() {
        assert_eq!(CostCategory::MemAccess.to_string(), "mem access");
        assert_eq!(CostCategory::ALL.len(), 5);
    }
}
