//! Interconnection-network traffic models — the paper's scaling argument,
//! quantified.
//!
//! The paper's case for directories (§1–§2): snoopy schemes cannot scale
//! because "the consistency protocol relies on low-latency broadcasts",
//! while a directory's messages are *directed* and "can be easily sent
//! over any arbitrary interconnection network". The bus-cycle metric of
//! §4 cannot express that difference — on a bus every transaction is
//! inherently a broadcast. This module prices the same recorded
//! [`BusOp`]s on richer topologies in **link-cycles per reference**
//! (flit-hops: one flit crossing one link for one cycle):
//!
//! * [`Topology::Bus`] — a single shared medium; everything costs its
//!   flit count, broadcast is free, capacity is one flit per cycle.
//! * [`Topology::Crossbar`] — point-to-point; directed messages cost one
//!   hop, a broadcast must be repeated to every node, capacity grows
//!   linearly with ports.
//! * [`Topology::Mesh2D`] — a √n×√n mesh with dimension-order routing;
//!   directed messages pay the average Manhattan distance, broadcasts
//!   flood every node, capacity grows with the link count.
//!
//! Snoopy protocols additionally require every coherence transaction's
//! *address* to be observed by all caches ([`Placement::Snoopy`]) — on a
//! network that means flooding the address portion of every operation,
//! which is precisely why the paper says replacing the bus with a faster
//! network "will not be successful" for snoopy schemes.

use std::fmt;

use dirsim_protocol::{BusOp, OpCounts};

/// Network topology for traffic pricing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// One shared bus (the paper's medium).
    Bus,
    /// Full crossbar between all nodes.
    Crossbar,
    /// Two-dimensional mesh, dimension-order routed.
    Mesh2D,
}

impl Topology {
    /// All topologies, in increasing scalability order.
    pub const ALL: [Topology; 3] = [Topology::Bus, Topology::Crossbar, Topology::Mesh2D];
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Bus => f.write_str("bus"),
            Topology::Crossbar => f.write_str("crossbar"),
            Topology::Mesh2D => f.write_str("mesh"),
        }
    }
}

/// How a protocol's transactions interact with the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Directory protocol: every message is directed; only explicit
    /// [`BusOp::BroadcastInvalidate`] operations flood.
    Directory,
    /// Snoopy protocol: the address of *every* transaction must reach
    /// every cache (that is what "snooping" means), so each operation's
    /// address flit floods; data still moves point-to-point.
    Snoopy,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::Directory => f.write_str("directory"),
            Placement::Snoopy => f.write_str("snoopy"),
        }
    }
}

/// Prices [`BusOp`]s in link-cycles on a given topology.
///
/// # Examples
///
/// ```
/// use dirsim_cost::network::{NetworkModel, Placement, Topology};
/// use dirsim_protocol::BusOp;
///
/// let mesh64 = NetworkModel::new(Topology::Mesh2D, 64);
/// // A directed invalidation crosses the average distance once:
/// let inv = mesh64.op_traffic(BusOp::Invalidate, Placement::Directory);
/// // A broadcast must reach all 63 other nodes:
/// let bcast = mesh64.op_traffic(BusOp::BroadcastInvalidate, Placement::Directory);
/// assert!(bcast > 5.0 * inv);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    topology: Topology,
    nodes: u32,
    words_per_block: u32,
}

impl NetworkModel {
    /// Creates a model of `nodes` processor/memory nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(topology: Topology, nodes: u32) -> Self {
        assert!(nodes > 0, "a network needs at least one node");
        NetworkModel {
            topology,
            nodes,
            words_per_block: 4,
        }
    }

    /// Overrides the block size in words.
    pub fn with_words_per_block(mut self, words: u32) -> Self {
        self.words_per_block = words;
        self
    }

    /// The topology.
    pub fn topology(self) -> Topology {
        self.topology
    }

    /// Node count.
    pub fn nodes(self) -> u32 {
        self.nodes
    }

    /// Mesh side length (⌈√n⌉).
    fn mesh_side(self) -> f64 {
        (f64::from(self.nodes)).sqrt().ceil()
    }

    /// Average hops for a directed message between uniformly random nodes.
    pub fn avg_hops(self) -> f64 {
        match self.topology {
            Topology::Bus | Topology::Crossbar => 1.0,
            Topology::Mesh2D => {
                // Average Manhattan distance on an s×s mesh is
                // 2·(s − 1/s)/3 per traversal (both dimensions included).
                let s = self.mesh_side();
                (2.0 / 3.0) * (s - 1.0 / s) * 2.0
            }
        }
    }

    /// Link-cycles for one flit to reach *every* node (a flood).
    pub fn flood_cost(self) -> f64 {
        match self.topology {
            // The bus is inherently a broadcast medium.
            Topology::Bus => 1.0,
            // A crossbar must repeat the message to each other port.
            Topology::Crossbar => f64::from(self.nodes.saturating_sub(1)).max(1.0),
            // A spanning-tree flood crosses each of n−1 tree links once.
            Topology::Mesh2D => f64::from(self.nodes.saturating_sub(1)).max(1.0),
        }
    }

    /// Total link capacity in flits per network cycle.
    pub fn link_capacity(self) -> f64 {
        match self.topology {
            Topology::Bus => 1.0,
            Topology::Crossbar => f64::from(self.nodes),
            Topology::Mesh2D => {
                // 2·s·(s−1) bidirectional links, two directions each.
                let s = self.mesh_side();
                (4.0 * s * (s - 1.0)).max(1.0)
            }
        }
    }

    /// Address and data flit counts for one operation.
    fn flits(self, op: BusOp) -> (f64, f64) {
        let block = f64::from(self.words_per_block);
        match op {
            BusOp::MemRead | BusOp::CacheSupply => (1.0, block),
            BusOp::WriteBack => (1.0, block),
            BusOp::WriteThrough | BusOp::WriteUpdate => (1.0, 1.0),
            BusOp::DirLookup | BusOp::DirUpdate => (1.0, 0.0),
            BusOp::Invalidate => (1.0, 0.0),
            BusOp::BroadcastInvalidate => (1.0, 0.0),
        }
    }

    /// Traffic of one operation in link-cycles.
    ///
    /// Directory placement sends directed messages over the average
    /// distance; snoopy placement floods the address flit of every
    /// operation (all caches must snoop it) and moves data point-to-point.
    /// Explicit broadcasts and snoopy write-updates flood regardless.
    pub fn op_traffic(self, op: BusOp, placement: Placement) -> f64 {
        let (addr, data) = self.flits(op);
        let hops = self.avg_hops();
        match (placement, op) {
            (_, BusOp::BroadcastInvalidate) => addr * self.flood_cost(),
            // A snoopy update/write-through must deliver its word to every
            // sharer it cannot name: address and data both flood.
            (Placement::Snoopy, BusOp::WriteUpdate | BusOp::WriteThrough) => {
                (addr + data) * self.flood_cost()
            }
            (Placement::Snoopy, _) => addr * self.flood_cost() + data * hops,
            (Placement::Directory, _) => (addr + data) * hops,
        }
    }

    /// Total traffic per reference for a recorded operation mix.
    pub fn traffic_per_ref(self, ops: &OpCounts, refs: u64, placement: Placement) -> f64 {
        assert!(refs > 0, "cannot normalise over zero references");
        ops.iter()
            .map(|(op, n)| n as f64 * self.op_traffic(op, placement))
            .sum::<f64>()
            / refs as f64
    }

    /// Upper bound on the number of processors the network sustains, given
    /// each issues `refs_per_cycle` references per network cycle costing
    /// `traffic_per_ref` link-cycles each.
    ///
    /// Returns infinity when the traffic is zero.
    pub fn saturation_processors(self, traffic_per_ref: f64, refs_per_cycle: f64) -> f64 {
        let demand = traffic_per_ref * refs_per_cycle;
        if demand <= 0.0 {
            f64::INFINITY
        } else {
            self.link_capacity() / demand
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_matches_intuition() {
        let bus = NetworkModel::new(Topology::Bus, 16);
        assert_eq!(bus.avg_hops(), 1.0);
        assert_eq!(bus.flood_cost(), 1.0);
        assert_eq!(bus.link_capacity(), 1.0);
        // Bus directed and broadcast invalidations cost the same (§4.3's
        // simplifying assumption).
        assert_eq!(
            bus.op_traffic(BusOp::Invalidate, Placement::Directory),
            bus.op_traffic(BusOp::BroadcastInvalidate, Placement::Directory)
        );
    }

    #[test]
    fn crossbar_broadcast_scales_linearly() {
        let small = NetworkModel::new(Topology::Crossbar, 4);
        let large = NetworkModel::new(Topology::Crossbar, 64);
        assert_eq!(
            small.op_traffic(BusOp::BroadcastInvalidate, Placement::Directory),
            3.0
        );
        assert_eq!(
            large.op_traffic(BusOp::BroadcastInvalidate, Placement::Directory),
            63.0
        );
        // Directed messages don't grow.
        assert_eq!(
            small.op_traffic(BusOp::Invalidate, Placement::Directory),
            large.op_traffic(BusOp::Invalidate, Placement::Directory)
        );
    }

    #[test]
    fn mesh_directed_grows_as_sqrt_n() {
        let m16 = NetworkModel::new(Topology::Mesh2D, 16);
        let m256 = NetworkModel::new(Topology::Mesh2D, 256);
        let t16 = m16.op_traffic(BusOp::Invalidate, Placement::Directory);
        let t256 = m256.op_traffic(BusOp::Invalidate, Placement::Directory);
        // 4x the side length → about 4x the hops, far below 16x.
        assert!(t256 / t16 > 2.0 && t256 / t16 < 8.0, "ratio {}", t256 / t16);
    }

    #[test]
    fn snoopy_floods_every_address() {
        let mesh = NetworkModel::new(Topology::Mesh2D, 64);
        let directory = mesh.op_traffic(BusOp::MemRead, Placement::Directory);
        let snoopy = mesh.op_traffic(BusOp::MemRead, Placement::Snoopy);
        assert!(
            snoopy > 1.8 * directory,
            "snoopy {snoopy} vs directory {directory}"
        );
    }

    #[test]
    fn snoopy_updates_flood_data_too() {
        let mesh = NetworkModel::new(Topology::Mesh2D, 64);
        let upd_snoopy = mesh.op_traffic(BusOp::WriteUpdate, Placement::Snoopy);
        let upd_dir = mesh.op_traffic(BusOp::WriteUpdate, Placement::Directory);
        assert!(upd_snoopy > 4.0 * upd_dir);
    }

    #[test]
    fn traffic_per_ref_normalises() {
        let mut ops = OpCounts::new();
        ops.record(BusOp::Invalidate, 10);
        let bus = NetworkModel::new(Topology::Bus, 4);
        let t = bus.traffic_per_ref(&ops, 1000, Placement::Directory);
        assert!((t - 0.01).abs() < 1e-12);
    }

    #[test]
    fn saturation_grows_with_capacity() {
        let bus = NetworkModel::new(Topology::Bus, 64);
        let mesh = NetworkModel::new(Topology::Mesh2D, 64);
        let t = 0.1;
        assert!(mesh.saturation_processors(t, 0.5) > 10.0 * bus.saturation_processors(t, 0.5));
        assert!(bus.saturation_processors(0.0, 0.5).is_infinite());
    }

    #[test]
    fn mesh_capacity_counts_links() {
        let m16 = NetworkModel::new(Topology::Mesh2D, 16); // 4x4
        assert_eq!(m16.link_capacity(), 4.0 * 4.0 * 3.0); // 2·s·(s−1)·2
    }

    #[test]
    fn block_size_scales_data_flits() {
        let m = NetworkModel::new(Topology::Crossbar, 8).with_words_per_block(8);
        assert_eq!(m.op_traffic(BusOp::MemRead, Placement::Directory), 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = NetworkModel::new(Topology::Bus, 0);
    }

    #[test]
    fn displays() {
        assert_eq!(Topology::Mesh2D.to_string(), "mesh");
        assert_eq!(Placement::Snoopy.to_string(), "snoopy");
    }
}
