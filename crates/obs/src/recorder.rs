//! The instrumentation surface: [`Recorder`], [`NoopRecorder`], and the
//! RAII phase timer [`Span`].

use std::time::Instant;

/// A sink for instrumentation events.
///
/// The engine is written against `&dyn Recorder` / `Arc<dyn Recorder>` so the
/// choice of sink is a runtime decision. Implementations must be cheap and
/// non-blocking relative to the simulation hot path; the in-tree choices are
/// [`NoopRecorder`] (default — all methods are empty defaults) and
/// [`crate::MetricsRegistry`].
///
/// Label slices are borrowed and short-lived; implementations that retain
/// labels must copy them. Callers are encouraged to gate any label
/// *construction* (string formatting, allocation) on [`Recorder::enabled`] so
/// the disabled path stays allocation-free.
pub trait Recorder: Send + Sync {
    /// Add `delta` to the counter `name` with the given labels.
    fn counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let _ = (name, labels, delta);
    }

    /// Set the gauge `name` with the given labels to `value` (last write
    /// wins).
    fn gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = (name, labels, value);
    }

    /// Record one sample `value` into the histogram `name` with the given
    /// labels.
    fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = (name, labels, value);
    }

    /// Whether this recorder actually records anything. `false` lets callers
    /// skip timer reads and label formatting entirely.
    fn enabled(&self) -> bool {
        false
    }
}

/// The default recorder: drops everything, reports itself disabled.
///
/// Every method is the trait's empty default, so an instrumented call site
/// costs one virtual call that immediately returns — and [`Span`]s gated on
/// [`Recorder::enabled`] never even read the clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// An RAII phase timer: measures wall-clock from construction to drop and
/// records the elapsed seconds as one histogram sample.
///
/// ```
/// use dirsim_obs::{MetricsRegistry, Recorder, Span};
/// let reg = MetricsRegistry::new();
/// {
///     let _span = Span::with_labels(&reg, "phase_seconds", &[("phase", "decode")]);
///     // ... timed work ...
/// }
/// assert_eq!(reg.snapshot().len(), 1);
/// ```
///
/// When the recorder is disabled the span is inert: no clock read, no label
/// allocation, nothing recorded on drop.
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Start an unlabelled span recording into histogram `name`.
    pub fn enter(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        Self::with_labels(recorder, name, &[])
    }

    /// Start a span recording into histogram `name` with the given labels.
    pub fn with_labels(
        recorder: &'a dyn Recorder,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Self {
        let enabled = recorder.enabled();
        Span {
            recorder,
            name,
            labels: if enabled {
                labels.iter().map(|&(k, v)| (k, v.to_string())).collect()
            } else {
                Vec::new()
            },
            start: if enabled { Some(Instant::now()) } else { None },
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed().as_secs_f64();
            let labels: Vec<(&str, &str)> =
                self.labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.recorder.observe(self.name, &labels, elapsed);
        }
    }
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("labels", &self.labels)
            .field("active", &self.start.is_some())
            .finish()
    }
}

impl std::fmt::Debug for dyn Recorder + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.counter("c", &[], 1);
        rec.gauge("g", &[("a", "b")], 1.0);
        rec.observe("h", &[], 1.0);
        // No state to inspect — the point is it compiles to nothing and the
        // calls above don't panic.
    }

    #[test]
    fn span_records_one_histogram_sample() {
        let reg = MetricsRegistry::new();
        {
            let _span = Span::with_labels(&reg, "phase_seconds", &[("phase", "merge")]);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "phase_seconds");
        assert_eq!(
            snap[0].labels,
            vec![("phase".to_string(), "merge".to_string())]
        );
    }

    #[test]
    fn span_on_disabled_recorder_records_nothing() {
        let rec = NoopRecorder;
        let span = Span::enter(&rec, "phase_seconds");
        assert!(span.start.is_none());
        assert!(span.labels.is_empty());
    }
}
