//! JSON-lines export: one manifest record followed by one record per metric
//! series.
//!
//! The format is line-oriented so files can be streamed, diffed, appended to
//! and committed as `BENCH_*.json`. Every line is one complete JSON object
//! with a `"record"` discriminator:
//!
//! ```text
//! {"record":"manifest","schema":1,"program":"simulate","schemes":[...],...}
//! {"record":"counter","name":"engine_refs","labels":{},"value":100000}
//! {"record":"gauge","name":"smoke_best_ratio","labels":{},"value":1.07}
//! {"record":"histogram","name":"phase_seconds","labels":{"phase":"decode"},
//!  "count":4,"sum":0.012,"min":0.002,"max":0.005}
//! ```
//!
//! [`SCHEMA_VERSION`] is carried in the manifest; bump it on any breaking
//! change to record shapes and teach [`crate::schema`] both versions for one
//! release.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use crate::json::{float, Json};
use crate::manifest::RunManifest;
use crate::registry::{MetricRecord, MetricValue, MetricsRegistry};

/// Version of the JSON-lines record schema, written into every manifest.
pub const SCHEMA_VERSION: u32 = 1;

fn labels_json(labels: &[(String, String)]) -> Json {
    Json::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

/// Serialise one metric series to its JSON-lines record body.
pub fn record_to_json(record: &MetricRecord) -> Json {
    let kind = match record.value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    };
    let mut pairs = vec![
        ("record".to_string(), Json::Str(kind.to_string())),
        ("name".to_string(), Json::Str(record.name.clone())),
        ("labels".to_string(), labels_json(&record.labels)),
    ];
    match &record.value {
        MetricValue::Counter(v) => pairs.push(("value".to_string(), Json::Int(*v as i128))),
        MetricValue::Gauge(v) => pairs.push(("value".to_string(), float(*v))),
        MetricValue::Histogram(h) => {
            pairs.push(("count".to_string(), Json::Int(h.count as i128)));
            pairs.push(("sum".to_string(), float(h.sum)));
            pairs.push(("min".to_string(), float(h.min)));
            pairs.push(("max".to_string(), float(h.max)));
        }
    }
    Json::Obj(pairs)
}

/// Write the manifest plus every series in `registry` as JSON lines.
pub fn write_jsonl<W: Write>(
    out: &mut W,
    manifest: &RunManifest,
    registry: &MetricsRegistry,
) -> io::Result<()> {
    writeln!(out, "{}", manifest.to_json().to_string_compact())?;
    for record in registry.snapshot() {
        writeln!(out, "{}", record_to_json(&record).to_string_compact())?;
    }
    Ok(())
}

/// Write the manifest plus every series in `registry` to a file at `path`,
/// replacing any existing file.
pub fn write_jsonl_file(
    path: &Path,
    manifest: &RunManifest,
    registry: &MetricsRegistry,
) -> io::Result<()> {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, manifest, registry)?;
    std::fs::write(path, buf)
}

/// An append-mode JSON-lines writer that flushes every record.
///
/// [`write_jsonl_file`] replaces the whole file per export, which suits
/// one-shot metrics snapshots but not long-running producers: a crash
/// loses the entire buffered run. `JsonlAppender` is the complement —
/// the file is opened in append mode (existing records are never
/// rewritten), each record is written as one complete line in a single
/// `write` call and flushed immediately, so after a kill at any instant
/// the file holds every completed record plus at most one torn final
/// line, which [`crate::parse_lines`] skips on the next read. This is
/// the durability contract the `dirsim-sweep` result store builds its
/// crash-safe resume on.
#[derive(Debug)]
pub struct JsonlAppender {
    file: File,
}

impl JsonlAppender {
    /// Opens (creating if necessary) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`].
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlAppender { file })
    }

    /// Appends one record as a single line and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`].
    pub fn append(&mut self, record: &Json) -> io::Result<()> {
        self.append_line(&record.to_string_compact())
    }

    /// Appends one pre-rendered line (without trailing newline) and
    /// flushes it. The line and its newline go down in one `write` call,
    /// so concurrent appenders never interleave within a record.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`].
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn exported_lines_each_parse_as_one_object() {
        let reg = MetricsRegistry::new();
        reg.counter("engine_refs", &[], 12);
        reg.gauge("ratio", &[("mode", "sharded")], 1.5);
        reg.observe("phase_seconds", &[("phase", "decode")], 0.25);
        let manifest = RunManifest::new("test").mode("serial").trace("unit");
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &manifest, &reg).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            Json::parse(line).unwrap();
        }
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("record").unwrap(),
            &Json::Str("manifest".to_string())
        );
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dirsim_obs_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn appender_appends_instead_of_truncating() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        let record = |n: u64| {
            Json::Obj(vec![
                ("record".to_string(), Json::Str("counter".to_string())),
                ("name".to_string(), Json::Str("x".to_string())),
                ("labels".to_string(), Json::Obj(Vec::new())),
                ("value".to_string(), Json::Int(n as i128)),
            ])
        };
        {
            let mut a = JsonlAppender::open(&path).unwrap();
            a.append(&record(1)).unwrap();
            // Every record is flushed: the file is complete mid-session.
            let text = std::fs::read_to_string(&path).unwrap();
            assert_eq!(text.lines().count(), 1);
            a.append(&record(2)).unwrap();
        }
        {
            // A second session must extend the file, not replace it.
            let mut a = JsonlAppender::open(&path).unwrap();
            a.append(&record(3)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let values: Vec<u64> = text
            .lines()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("value")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(values, vec![1, 2, 3]);
        assert!(text.ends_with('\n'), "every record is newline-terminated");
        std::fs::remove_file(&path).unwrap();
    }
}
