//! JSON-lines export: one manifest record followed by one record per metric
//! series.
//!
//! The format is line-oriented so files can be streamed, diffed, appended to
//! and committed as `BENCH_*.json`. Every line is one complete JSON object
//! with a `"record"` discriminator:
//!
//! ```text
//! {"record":"manifest","schema":1,"program":"simulate","schemes":[...],...}
//! {"record":"counter","name":"engine_refs","labels":{},"value":100000}
//! {"record":"gauge","name":"smoke_best_ratio","labels":{},"value":1.07}
//! {"record":"histogram","name":"phase_seconds","labels":{"phase":"decode"},
//!  "count":4,"sum":0.012,"min":0.002,"max":0.005}
//! ```
//!
//! [`SCHEMA_VERSION`] is carried in the manifest; bump it on any breaking
//! change to record shapes and teach [`crate::schema`] both versions for one
//! release.

use std::io::{self, Write};
use std::path::Path;

use crate::json::{float, Json};
use crate::manifest::RunManifest;
use crate::registry::{MetricRecord, MetricValue, MetricsRegistry};

/// Version of the JSON-lines record schema, written into every manifest.
pub const SCHEMA_VERSION: u32 = 1;

fn labels_json(labels: &[(String, String)]) -> Json {
    Json::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

/// Serialise one metric series to its JSON-lines record body.
pub fn record_to_json(record: &MetricRecord) -> Json {
    let kind = match record.value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    };
    let mut pairs = vec![
        ("record".to_string(), Json::Str(kind.to_string())),
        ("name".to_string(), Json::Str(record.name.clone())),
        ("labels".to_string(), labels_json(&record.labels)),
    ];
    match &record.value {
        MetricValue::Counter(v) => pairs.push(("value".to_string(), Json::Int(*v as i128))),
        MetricValue::Gauge(v) => pairs.push(("value".to_string(), float(*v))),
        MetricValue::Histogram(h) => {
            pairs.push(("count".to_string(), Json::Int(h.count as i128)));
            pairs.push(("sum".to_string(), float(h.sum)));
            pairs.push(("min".to_string(), float(h.min)));
            pairs.push(("max".to_string(), float(h.max)));
        }
    }
    Json::Obj(pairs)
}

/// Write the manifest plus every series in `registry` as JSON lines.
pub fn write_jsonl<W: Write>(
    out: &mut W,
    manifest: &RunManifest,
    registry: &MetricsRegistry,
) -> io::Result<()> {
    writeln!(out, "{}", manifest.to_json().to_string_compact())?;
    for record in registry.snapshot() {
        writeln!(out, "{}", record_to_json(&record).to_string_compact())?;
    }
    Ok(())
}

/// Write the manifest plus every series in `registry` to a file at `path`,
/// replacing any existing file.
pub fn write_jsonl_file(
    path: &Path,
    manifest: &RunManifest,
    registry: &MetricsRegistry,
) -> io::Result<()> {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, manifest, registry)?;
    std::fs::write(path, buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn exported_lines_each_parse_as_one_object() {
        let reg = MetricsRegistry::new();
        reg.counter("engine_refs", &[], 12);
        reg.gauge("ratio", &[("mode", "sharded")], 1.5);
        reg.observe("phase_seconds", &[("phase", "decode")], 0.25);
        let manifest = RunManifest::new("test").mode("serial").trace("unit");
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &manifest, &reg).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            Json::parse(line).unwrap();
        }
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("record").unwrap(),
            &Json::Str("manifest".to_string())
        );
    }
}
