//! # dirsim-obs
//!
//! Observability layer for the `dirsim` simulation engine.
//!
//! The paper's methodology (§4) separates *measuring event frequencies* from
//! *pricing them*; this crate applies the same separation to the simulator
//! itself. The engine is instrumented once, against the tiny [`Recorder`]
//! trait, and everything downstream — aggregation, export, analysis — happens
//! outside the hot path:
//!
//! * [`Recorder`] — the instrumentation surface: counters, gauges, histogram
//!   observations. The default [`NoopRecorder`] compiles to nothing; the
//!   throughput smoke gate in CI verifies the disabled cost stays
//!   unmeasurable.
//! * [`MetricsRegistry`] — a thread-safe in-memory [`Recorder`] that
//!   aggregates everything it sees and can snapshot to [`MetricRecord`]s.
//! * [`Span`] — an RAII phase timer; elapsed seconds land in a histogram
//!   metric on drop. When the recorder is disabled it never touches the
//!   clock.
//! * [`RunManifest`] — what was run: program, scheme set, execution mode,
//!   trace identity/seed, reference count, wall-clock.
//! * [`export`] / [`schema`] — a hand-rolled JSON-lines writer and validator
//!   (the workspace deliberately has no serde; see DESIGN.md §7). Files are
//!   suitable for committing as `BENCH_*.json`. [`JsonlAppender`] is the
//!   append-mode, flush-per-record variant for long-running producers
//!   (the `dirsim-sweep` store); the parser skips a killed writer's torn
//!   final line so such files can always be read back and resumed.
//! * [`ProgressMeter`] — a throttled progress callback for long runs
//!   (references/sec, model-checker states/sec + frontier depth).
//!
//! No dependencies, std only.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod json;
pub mod manifest;
pub mod progress;
pub mod recorder;
pub mod registry;
pub mod schema;

pub use export::{write_jsonl, write_jsonl_file, JsonlAppender, SCHEMA_VERSION};
pub use json::Json;
pub use manifest::RunManifest;
pub use progress::{Progress, ProgressMeter};
pub use recorder::{NoopRecorder, Recorder, Span};
pub use registry::{HistogramSummary, MetricRecord, MetricValue, MetricsRegistry};
pub use schema::{
    parse_lines, parse_metrics, require_metrics, validate_jsonl, ExportedRun, SchemaError,
};
