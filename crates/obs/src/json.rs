//! A minimal JSON value, writer and recursive-descent parser.
//!
//! The workspace deliberately carries no serde (DESIGN.md §7), and the
//! metrics exporter only needs flat records, so ~250 lines of hand-rolled
//! JSON beat a dependency. Two deliberate choices keep round-trips exact:
//!
//! * integers and floats are distinct variants — `u64` counters never pass
//!   through `f64` and lose precision;
//! * floats are written with Rust's shortest-round-trip formatting, so
//!   parsing the output reproduces the original bits. Non-finite floats
//!   (which JSON cannot express) are written as `null`.

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent). `i128` covers the full
    /// `u64` and `i64` ranges.
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved; duplicate keys are not rejected
    /// (last lookup wins via [`Json::get`] scanning forward).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object. Returns `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`: floats as-is, integers converted, `null` as
    /// NaN (the writer's encoding for non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialise to a compact single-line JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Build a `Json::Float`, encoding non-finite values as `null` the way the
/// writer does.
pub fn float(value: f64) -> Json {
    if value.is_finite() {
        Json::Float(value)
    } else {
        Json::Null
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; `null` is the conventional stand-in.
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest representation that round-trips exactly, and
    // always includes a fraction or exponent ("2.0", "1e-7") so the parser
    // classifies it back as a float.
    let _ = write!(out, "{f:?}");
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: only handle the paired form;
                            // a lone surrogate becomes the replacement char.
                            let c = if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float literal"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text);
        }
    }

    #[test]
    fn float_round_trips_exactly() {
        for f in [
            0.5,
            -1.25e-7,
            std::f64::consts::PI,
            1e300,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Float(f).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap(), Json::Float(f), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(f64::NAN), Json::Null);
        assert_eq!(float(f64::INFINITY), Json::Null);
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn u64_counters_survive_round_trip() {
        let v = Json::Int(u64::MAX as i128);
        let parsed = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash\ttab \u{1} unicode ✓";
        let text = Json::Str(s.to_string()).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text =
            r#"{"record":"counter","labels":{"scheme":"Dir0B"},"value":42,"xs":[1,2.5,null,true]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_compact(), text);
        assert_eq!(v.get("record").and_then(Json::as_str), Some("counter"));
        assert_eq!(
            v.get("labels")
                .and_then(|l| l.get("scheme"))
                .and_then(Json::as_str),
            Some("Dir0B")
        );
        assert_eq!(v.get("value").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(text).is_err(), "{text:?} should not parse");
        }
    }
}
