//! Validate dirsim metrics JSON-lines files against the exporter schema.
//!
//! ```text
//! obs_schema <file.jsonl> [more files...]
//! ```
//!
//! Exits non-zero if any file fails to parse or violates the schema. Used by
//! CI to keep emitted records from silently drifting, and handy locally on
//! anything produced by `--metrics-json`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs_schema <metrics.jsonl> [more files...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match dirsim_obs::validate_jsonl(&text) {
                Ok(summary) => println!("{path}: {summary}"),
                Err(e) => {
                    eprintln!("{path}: FAIL: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{path}: FAIL: cannot read: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
