//! Validate dirsim metrics JSON-lines files against the exporter schema.
//!
//! ```text
//! obs_schema [--require <metric-name>]... <file.jsonl> [more files...]
//! ```
//!
//! Exits non-zero if any file fails to parse or violates the schema. Each
//! `--require <name>` (repeatable) additionally demands that **every**
//! listed file contain at least one series with that metric name — CI
//! pins the pipeline metrics this way, so a renamed or silently-disabled
//! series fails the check instead of drifting. Used by CI and handy
//! locally on anything produced by `--metrics-json`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut required: Vec<String> = Vec::new();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--require" {
            i += 1;
            match args.get(i) {
                Some(name) => required.push(name.clone()),
                None => {
                    eprintln!("obs_schema: --require needs a metric name");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("usage: obs_schema [--require <metric-name>]... <metrics.jsonl> [more files...]");
        return ExitCode::FAILURE;
    }
    let required: Vec<&str> = required.iter().map(String::as_str).collect();
    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match check(&text, &required) {
                Ok(summary) => println!("{path}: {summary}"),
                Err(e) => {
                    eprintln!("{path}: FAIL: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{path}: FAIL: cannot read: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn check(text: &str, required: &[&str]) -> Result<String, dirsim_obs::SchemaError> {
    let summary = dirsim_obs::validate_jsonl(text)?;
    if !required.is_empty() {
        // validate_jsonl already proved the file parses.
        let run = dirsim_obs::parse_metrics(text)?;
        dirsim_obs::require_metrics(&run, required)?;
    }
    Ok(summary)
}
