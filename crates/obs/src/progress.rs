//! Throttled progress reporting for long-running phases.

use std::time::{Duration, Instant};

/// One progress report delivered to the sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// What is being counted (e.g. `"refs"`, `"states"`).
    pub label: &'static str,
    /// Cumulative units of work completed.
    pub done: u64,
    /// Units per second since the meter was created.
    pub rate_per_sec: f64,
    /// Optional secondary figure (e.g. the model checker's frontier depth).
    pub detail: Option<u64>,
    /// Seconds since the meter was created.
    pub elapsed_secs: f64,
}

type Sink = Box<dyn FnMut(&Progress) + Send>;

/// A progress callback throttled two ways so it can sit inside per-reference
/// or per-state hot loops:
///
/// * [`ProgressMeter::tick`] only consults the clock once every
///   [`STRIDE`](Self::STRIDE) calls — a disabled or between-checks tick is a
///   branch and an increment;
/// * the sink only fires when at least the configured interval has passed
///   since the previous report.
///
/// [`ProgressMeter::finish`] forces one final report regardless of
/// throttling, so short runs still produce output.
pub struct ProgressMeter {
    sink: Option<Sink>,
    label: &'static str,
    interval: Duration,
    start: Instant,
    last_emit: Instant,
    calls: u64,
}

impl ProgressMeter {
    /// How many `tick` calls pass between clock reads.
    pub const STRIDE: u64 = 1024;

    /// A meter delivering reports to `sink` at most once per `interval`.
    pub fn new(label: &'static str, interval: Duration, sink: Sink) -> Self {
        let now = Instant::now();
        ProgressMeter {
            sink: Some(sink),
            label,
            interval,
            start: now,
            last_emit: now,
            calls: 0,
        }
    }

    /// A meter printing `label: done (rate/s, detail)` lines to stderr.
    pub fn stderr(label: &'static str, interval: Duration) -> Self {
        Self::new(
            label,
            interval,
            Box::new(|p: &Progress| match p.detail {
                Some(d) => eprintln!(
                    "{}: {} ({:.0}/s, depth {})",
                    p.label, p.done, p.rate_per_sec, d
                ),
                None => eprintln!("{}: {} ({:.0}/s)", p.label, p.done, p.rate_per_sec),
            }),
        )
    }

    /// A meter that never reports; every `tick` is a single branch.
    pub fn disabled() -> Self {
        let now = Instant::now();
        ProgressMeter {
            sink: None,
            label: "",
            interval: Duration::ZERO,
            start: now,
            last_emit: now,
            calls: 0,
        }
    }

    /// Whether this meter can ever emit a report.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record that `done` cumulative units are complete; maybe emit a
    /// report. Cheap enough for per-reference loops.
    pub fn tick(&mut self, done: u64, detail: Option<u64>) {
        if self.sink.is_none() {
            return;
        }
        self.calls += 1;
        if self.calls % Self::STRIDE != 0 {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_emit) < self.interval {
            return;
        }
        self.emit(now, done, detail);
    }

    /// Like [`tick`](Self::tick) but without the call-count stride: always
    /// consults the clock, still respects the report interval. For callers
    /// that tick coarsely (per phase or per batch) rather than per unit.
    pub fn tick_now(&mut self, done: u64, detail: Option<u64>) {
        if self.sink.is_none() {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_emit) < self.interval {
            return;
        }
        self.emit(now, done, detail);
    }

    /// Emit one final report now, bypassing throttling.
    pub fn finish(&mut self, done: u64, detail: Option<u64>) {
        if self.sink.is_none() {
            return;
        }
        self.emit(Instant::now(), done, detail);
    }

    fn emit(&mut self, now: Instant, done: u64, detail: Option<u64>) {
        self.last_emit = now;
        let elapsed = now.duration_since(self.start).as_secs_f64();
        let progress = Progress {
            label: self.label,
            done,
            // Guard the rate against a zero-duration interval on very fast
            // (or mocked) clocks.
            rate_per_sec: if elapsed > 0.0 {
                done as f64 / elapsed
            } else {
                0.0
            },
            detail,
            elapsed_secs: elapsed,
        };
        if let Some(sink) = &mut self.sink {
            sink(&progress);
        }
    }
}

impl std::fmt::Debug for ProgressMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressMeter")
            .field("label", &self.label)
            .field("interval", &self.interval)
            .field("enabled", &self.is_enabled())
            .field("calls", &self.calls)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn collecting_meter(interval: Duration) -> (ProgressMeter, Arc<Mutex<Vec<Progress>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let meter = ProgressMeter::new(
            "units",
            interval,
            Box::new(move |p| sink.lock().unwrap().push(*p)),
        );
        (meter, seen)
    }

    #[test]
    fn disabled_meter_never_emits() {
        let mut meter = ProgressMeter::disabled();
        assert!(!meter.is_enabled());
        for i in 0..10_000 {
            meter.tick(i, None);
        }
        meter.finish(10_000, None);
    }

    #[test]
    fn ticks_between_strides_do_not_touch_the_clock_path() {
        let (mut meter, seen) = collecting_meter(Duration::ZERO);
        // STRIDE - 1 ticks: none lands on the stride boundary.
        for i in 1..ProgressMeter::STRIDE {
            meter.tick(i, None);
        }
        assert!(seen.lock().unwrap().is_empty());
        meter.tick(ProgressMeter::STRIDE, None);
        assert_eq!(seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn long_interval_suppresses_reports_until_finish() {
        let (mut meter, seen) = collecting_meter(Duration::from_secs(3600));
        for i in 0..(ProgressMeter::STRIDE * 4) {
            meter.tick(i, None);
        }
        assert!(seen.lock().unwrap().is_empty());
        meter.finish(1234, Some(7));
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].done, 1234);
        assert_eq!(seen[0].detail, Some(7));
        assert_eq!(seen[0].label, "units");
    }
}
