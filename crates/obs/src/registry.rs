//! In-memory metric aggregation: [`MetricsRegistry`] and its snapshot types.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::recorder::Recorder;

/// A metric identity: name plus a sorted label set.
///
/// Labels are sorted on insertion so `[("a","1"),("b","2")]` and
/// `[("b","2"),("a","1")]` address the same series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Aggregate of all samples observed by one histogram series.
///
/// The engine does not need quantiles, so the summary is the cheap exact
/// part: count, sum, min, max. (Mean is `sum / count`.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl HistogramSummary {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn new(value: f64) -> Self {
        HistogramSummary {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }
}

/// The value of one exported metric series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// One metric series as exported: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// Metric name.
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The aggregated value.
    pub value: MetricValue,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, HistogramSummary>,
}

/// A thread-safe in-memory [`Recorder`] that aggregates counters, gauges and
/// histogram summaries, keyed by `(name, sorted labels)`.
///
/// A single `Mutex` guards the maps: the engine's instrumentation points are
/// per-chunk / per-phase, not per-reference, so contention is negligible and
/// simplicity wins over sharded atomics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot every series, sorted by kind (counters, then gauges, then
    /// histograms) and within kind by `(name, labels)`.
    pub fn snapshot(&self) -> Vec<MetricRecord> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = Vec::new();
        for (key, &value) in &inner.counters {
            out.push(MetricRecord {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: MetricValue::Counter(value),
            });
        }
        for (key, &value) in &inner.gauges {
            out.push(MetricRecord {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: MetricValue::Gauge(value),
            });
        }
        for (key, &value) in &inner.histograms {
            out.push(MetricRecord {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: MetricValue::Histogram(value),
            });
        }
        out
    }

    /// Fetch one counter's current value, if the series exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.get(&MetricKey::new(name, labels)).copied()
    }

    /// Fetch one gauge's current value, if the series exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// Fetch one histogram's summary, if the series exists.
    pub fn histogram_summary(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSummary> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.histograms.get(&MetricKey::new(name, labels)).copied()
    }

    /// True when no series have been recorded.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }
}

impl Recorder for MetricsRegistry {
    fn counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(key).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(key, value);
    }

    fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(key)
            .and_modify(|h| h.observe(value))
            .or_insert_with(|| HistogramSummary::new(value));
    }

    fn enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter("refs", &[], 3);
        reg.counter("refs", &[], 4);
        assert_eq!(reg.counter_value("refs", &[]), Some(7));
    }

    #[test]
    fn label_order_is_canonicalised() {
        let reg = MetricsRegistry::new();
        reg.counter("ops", &[("scheme", "Dir0B"), ("op", "Inval")], 1);
        reg.counter("ops", &[("op", "Inval"), ("scheme", "Dir0B")], 1);
        assert_eq!(
            reg.counter_value("ops", &[("scheme", "Dir0B"), ("op", "Inval")]),
            Some(2)
        );
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    fn gauges_take_last_write() {
        let reg = MetricsRegistry::new();
        reg.gauge("ratio", &[], 0.5);
        reg.gauge("ratio", &[], 0.75);
        assert_eq!(reg.gauge_value("ratio", &[]), Some(0.75));
    }

    #[test]
    fn histograms_summarise() {
        let reg = MetricsRegistry::new();
        for v in [2.0, 1.0, 4.0] {
            reg.observe("lat", &[], v);
        }
        let h = reg.histogram_summary("lat", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 7.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
    }

    #[test]
    fn snapshot_orders_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.observe("h", &[], 1.0);
        reg.gauge("g", &[], 1.0);
        reg.counter("c", &[], 1);
        let kinds: Vec<_> = reg
            .snapshot()
            .into_iter()
            .map(|r| match r.value {
                MetricValue::Counter(_) => "c",
                MetricValue::Gauge(_) => "g",
                MetricValue::Histogram(_) => "h",
            })
            .collect();
        assert_eq!(kinds, vec!["c", "g", "h"]);
    }
}
