//! Parse and validate exported metrics files, so committed `BENCH_*.json`
//! records never silently drift from the writer.

use crate::json::Json;
use crate::manifest::RunManifest;
use crate::registry::{HistogramSummary, MetricRecord, MetricValue};

/// A fully parsed metrics file: the manifest plus every metric series.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedRun {
    /// The leading manifest record.
    pub manifest: RunManifest,
    /// Every metric series, in file order.
    pub records: Vec<MetricRecord>,
}

/// Why a metrics file failed validation.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError {
    /// 1-based line number of the offending record (0 for file-level
    /// problems such as an empty file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "metrics schema error: {}", self.message)
        } else {
            write!(
                f,
                "metrics schema error on line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for SchemaError {}

fn fail<T>(line: usize, message: impl Into<String>) -> Result<T, SchemaError> {
    Err(SchemaError {
        line,
        message: message.into(),
    })
}

/// Parse a JSON-lines document into `(line, kind, value)` triples, where
/// `kind` is each record's `"record"` discriminator. Blank lines are
/// skipped; line numbers are 1-based.
///
/// A **final** line that is not valid JSON is skipped rather than
/// rejected: appenders (see [`crate::export::JsonlAppender`]) write each
/// record as one line and flush it, so the only artefact a killed writer
/// can leave behind is a torn trailing line — tolerating it lets a
/// crashed run's output be read back and resumed. Malformed JSON
/// *before* the last line still fails: that is corruption, not a torn
/// write. A well-formed final line missing its discriminator also still
/// fails — a torn write cannot produce valid JSON of the wrong shape.
///
/// This is the shared front half of every JSONL reader in the workspace:
/// [`parse_metrics`] layers the metrics schema on top, and
/// `dirsim-analyze` layers its transition-table schema the same way.
pub fn parse_lines(text: &str) -> Result<Vec<(usize, String, Json)>, SchemaError> {
    let last_content_line = text
        .lines()
        .enumerate()
        .filter(|(_, raw)| !raw.trim().is_empty())
        .map(|(idx, _)| idx + 1)
        .last();
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = match Json::parse(raw) {
            Ok(v) => v,
            Err(_) if Some(line) == last_content_line => continue,
            Err(e) => return fail(line, e.to_string()),
        };
        let Some(kind) = value.get("record").and_then(Json::as_str) else {
            return fail(line, "missing or non-string \"record\" discriminator");
        };
        out.push((line, kind.to_string(), value));
    }
    Ok(out)
}

fn parse_labels(line: usize, value: &Json) -> Result<Vec<(String, String)>, SchemaError> {
    let Some(obj) = value.get("labels").and_then(Json::as_obj) else {
        return fail(line, "missing or non-object \"labels\"");
    };
    let mut labels = Vec::with_capacity(obj.len());
    for (k, v) in obj {
        let Some(v) = v.as_str() else {
            return fail(line, format!("label {k:?} has a non-string value"));
        };
        labels.push((k.clone(), v.to_string()));
    }
    let mut sorted = labels.clone();
    sorted.sort();
    if sorted != labels {
        return fail(line, "labels are not sorted by key");
    }
    Ok(labels)
}

fn require_f64(line: usize, value: &Json, key: &str) -> Result<f64, SchemaError> {
    match value.get(key).and_then(Json::as_f64) {
        Some(f) => Ok(f),
        None => fail(line, format!("missing or non-numeric {key:?}")),
    }
}

fn parse_metric_line(line: usize, kind: &str, value: &Json) -> Result<MetricRecord, SchemaError> {
    let Some(name) = value.get("name").and_then(Json::as_str) else {
        return fail(line, "missing or non-string \"name\"");
    };
    let labels = parse_labels(line, value)?;
    let metric = match kind {
        "counter" => match value.get("value").and_then(Json::as_u64) {
            Some(v) => MetricValue::Counter(v),
            None => return fail(line, "counter \"value\" must be a non-negative integer"),
        },
        "gauge" => MetricValue::Gauge(require_f64(line, value, "value")?),
        "histogram" => {
            let Some(count) = value.get("count").and_then(Json::as_u64) else {
                return fail(line, "histogram \"count\" must be a non-negative integer");
            };
            MetricValue::Histogram(HistogramSummary {
                count,
                sum: require_f64(line, value, "sum")?,
                min: require_f64(line, value, "min")?,
                max: require_f64(line, value, "max")?,
            })
        }
        other => return fail(line, format!("unknown record kind {other:?}")),
    };
    Ok(MetricRecord {
        name: name.to_string(),
        labels,
        value: metric,
    })
}

/// Parse a JSON-lines metrics document into an [`ExportedRun`].
///
/// Checks the structural schema as it goes: the first line must be a
/// `manifest` record carrying the supported [`crate::SCHEMA_VERSION`], and
/// every following line must be a well-formed `counter` / `gauge` /
/// `histogram` record. Blank lines are ignored, and a torn final line
/// (a killed writer's partial record) is skipped — see [`parse_lines`].
pub fn parse_metrics(text: &str) -> Result<ExportedRun, SchemaError> {
    let mut manifest = None;
    let mut records = Vec::new();
    for (line, kind, value) in parse_lines(text)? {
        if manifest.is_none() {
            if kind != "manifest" {
                return fail(
                    line,
                    format!("first record must be a manifest, got {kind:?}"),
                );
            }
            match value.get("schema").and_then(Json::as_u64) {
                Some(v) if v == u64::from(crate::SCHEMA_VERSION) => {}
                Some(v) => {
                    return fail(
                        line,
                        format!(
                            "unsupported schema version {v} (expected {})",
                            crate::SCHEMA_VERSION
                        ),
                    )
                }
                None => return fail(line, "manifest is missing an integer \"schema\""),
            }
            match RunManifest::from_json(&value) {
                Some(m) => manifest = Some(m),
                None => return fail(line, "manifest is missing required fields"),
            }
        } else if kind == "manifest" {
            return fail(line, "duplicate manifest record");
        } else {
            records.push(parse_metric_line(line, &kind, &value)?);
        }
    }
    match manifest {
        Some(manifest) => Ok(ExportedRun { manifest, records }),
        None => fail(0, "empty metrics file (no manifest record)"),
    }
}

/// Require that `run` contains at least one record for every metric name
/// in `names` (labels are ignored: any series of that name counts).
///
/// CI uses this through `obs_schema --require` to pin the pipeline
/// metric names (`decode_stall_seconds`, `pipeline_occupancy`, …): a
/// rename or an accidentally-disabled recorder then fails the schema
/// check instead of silently exporting a file with the series missing.
pub fn require_metrics(run: &ExportedRun, names: &[&str]) -> Result<(), SchemaError> {
    for name in names {
        if !run.records.iter().any(|r| r.name == *name) {
            return fail(0, format!("required metric {name:?} is missing"));
        }
    }
    Ok(())
}

/// Validate a JSON-lines metrics document, returning a one-line human
/// summary on success.
pub fn validate_jsonl(text: &str) -> Result<String, SchemaError> {
    let run = parse_metrics(text)?;
    let mut counters = 0usize;
    let mut gauges = 0usize;
    let mut histograms = 0usize;
    for r in &run.records {
        match r.value {
            MetricValue::Counter(_) => counters += 1,
            MetricValue::Gauge(_) => gauges += 1,
            MetricValue::Histogram(_) => histograms += 1,
        }
    }
    Ok(format!(
        "ok: program={} schema={} schemes={} counters={} gauges={} histograms={}",
        run.manifest.program,
        crate::SCHEMA_VERSION,
        run.manifest.schemes.len(),
        counters,
        gauges,
        histograms,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::write_jsonl;
    use crate::recorder::Recorder;
    use crate::MetricsRegistry;

    fn sample_file() -> String {
        let reg = MetricsRegistry::new();
        reg.counter("engine_refs", &[], 1000);
        reg.counter("scheme_refs", &[("scheme", "Dir0B")], 1000);
        reg.gauge("best_ratio", &[], 1.04);
        reg.observe("phase_seconds", &[("phase", "decode")], 0.002);
        let manifest = RunManifest::new("test")
            .schemes(["Dir0B"])
            .mode("single-pass")
            .trace("unit")
            .refs(1000);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &manifest, &reg).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn writer_output_validates_and_round_trips() {
        let text = sample_file();
        let summary = validate_jsonl(&text).unwrap();
        assert!(summary.starts_with("ok:"), "{summary}");
        let run = parse_metrics(&text).unwrap();
        assert_eq!(run.manifest.program, "test");
        assert_eq!(run.records.len(), 4);
    }

    #[test]
    fn parse_lines_skips_blanks_and_numbers_from_one() {
        let text = "\n{\"record\":\"a\"}\n\n{\"record\":\"b\",\"x\":1}\n";
        let lines = parse_lines(text).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!((lines[0].0, lines[0].1.as_str()), (2, "a"));
        assert_eq!((lines[1].0, lines[1].1.as_str()), (4, "b"));
        let err = parse_lines("{\"norecord\":true}").unwrap_err();
        assert!(err.message.contains("discriminator"), "{err}");
    }

    #[test]
    fn torn_final_line_is_skipped() {
        // A killed appender leaves a partial record on the last line; both
        // layers must read past it so the run can be resumed.
        let torn = format!("{}{}", sample_file(), r#"{"record":"counter","na"#);
        let lines = parse_lines(&torn).unwrap();
        assert_eq!(lines.len(), 5, "manifest + 4 records, torn tail dropped");
        let run = parse_metrics(&torn).unwrap();
        assert_eq!(run.records.len(), 4);
        validate_jsonl(&torn).unwrap();
    }

    #[test]
    fn torn_middle_line_still_fails() {
        // Only the *final* line can be a torn write; earlier garbage is
        // corruption and must surface.
        let mut lines: Vec<String> = sample_file().lines().map(str::to_string).collect();
        lines.insert(2, r#"{"record":"cou"#.to_string());
        let err = parse_metrics(&lines.join("\n")).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_missing_manifest() {
        let err =
            parse_metrics(r#"{"record":"counter","name":"x","labels":{},"value":1}"#).unwrap_err();
        assert!(err.message.contains("manifest"), "{err}");
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let bad = sample_file().replacen("\"schema\":1", "\"schema\":99", 1);
        let err = parse_metrics(&bad).unwrap_err();
        assert!(err.message.contains("unsupported schema version"), "{err}");
    }

    #[test]
    fn rejects_negative_counter() {
        let text = format!(
            "{}\n{}",
            sample_file().lines().next().unwrap(),
            r#"{"record":"counter","name":"x","labels":{},"value":-1}"#
        );
        let err = parse_metrics(&text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_empty_file() {
        let err = parse_metrics("").unwrap_err();
        assert_eq!(err.line, 0);
    }

    #[test]
    fn require_metrics_checks_names_not_labels() {
        let run = parse_metrics(&sample_file()).unwrap();
        require_metrics(&run, &["engine_refs", "phase_seconds", "best_ratio"]).unwrap();
        // A labelled series satisfies a bare-name requirement.
        require_metrics(&run, &["scheme_refs"]).unwrap();
        let err = require_metrics(&run, &["engine_refs", "pipeline_occupancy"]).unwrap_err();
        assert!(err.message.contains("pipeline_occupancy"), "{err}");
        assert_eq!(err.line, 0, "missing metrics are a file-level problem");
    }
}
