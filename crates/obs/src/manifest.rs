//! [`RunManifest`]: the "what was run" record at the head of a metrics file.

use crate::json::{float, Json};

/// Identity of one simulation / verification run.
///
/// Emitted as the first JSON-lines record of every metrics file so a
/// committed `BENCH_*.json` is self-describing: which program produced it,
/// over which schemes, in which execution mode, from which trace/seed, and
/// how long it took.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Producing program (e.g. `"simulate"`, `"throughput_smoke"`).
    pub program: String,
    /// Scheme names in the run, in run order.
    pub schemes: Vec<String>,
    /// Execution mode description (e.g. `"single-pass"`, `"sharded(8)"`).
    pub mode: String,
    /// Trace identity: a file path or a synthetic-workload description.
    pub trace: String,
    /// RNG seed for synthetic traces, if one was used.
    pub seed: Option<u64>,
    /// Total memory references processed, if known.
    pub refs: Option<u64>,
    /// Wall-clock duration of the measured work, in seconds.
    pub wall_secs: f64,
    /// Free-form extra key/value pairs (e.g. cache geometry, gate outcome).
    pub extra: Vec<(String, String)>,
}

impl RunManifest {
    /// Start a manifest for `program`; fill the rest with the builder-style
    /// setters.
    pub fn new(program: &str) -> Self {
        RunManifest {
            program: program.to_string(),
            ..Self::default()
        }
    }

    /// Set the scheme list.
    pub fn schemes<S: AsRef<str>>(mut self, schemes: impl IntoIterator<Item = S>) -> Self {
        self.schemes = schemes
            .into_iter()
            .map(|s| s.as_ref().to_string())
            .collect();
        self
    }

    /// Set the execution-mode description.
    pub fn mode(mut self, mode: &str) -> Self {
        self.mode = mode.to_string();
        self
    }

    /// Set the trace identity.
    pub fn trace(mut self, trace: &str) -> Self {
        self.trace = trace.to_string();
        self
    }

    /// Set the synthetic-trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Set the processed-reference count.
    pub fn refs(mut self, refs: u64) -> Self {
        self.refs = Some(refs);
        self
    }

    /// Set the measured wall-clock seconds.
    pub fn wall_secs(mut self, secs: f64) -> Self {
        self.wall_secs = secs;
        self
    }

    /// Append one free-form key/value pair.
    pub fn extra(mut self, key: &str, value: &str) -> Self {
        self.extra.push((key.to_string(), value.to_string()));
        self
    }

    /// Serialise to the JSON object used as the manifest record body.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("record".to_string(), Json::Str("manifest".to_string())),
            (
                "schema".to_string(),
                Json::Int(crate::SCHEMA_VERSION as i128),
            ),
            ("program".to_string(), Json::Str(self.program.clone())),
            (
                "schemes".to_string(),
                Json::Arr(self.schemes.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("trace".to_string(), Json::Str(self.trace.clone())),
        ];
        if let Some(seed) = self.seed {
            pairs.push(("seed".to_string(), Json::Int(seed as i128)));
        }
        if let Some(refs) = self.refs {
            pairs.push(("refs".to_string(), Json::Int(refs as i128)));
        }
        pairs.push(("wall_secs".to_string(), float(self.wall_secs)));
        if !self.extra.is_empty() {
            pairs.push((
                "extra".to_string(),
                Json::Obj(
                    self.extra
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        Json::Obj(pairs)
    }

    /// Reconstruct a manifest from a parsed manifest record. Returns `None`
    /// if required fields are missing or mistyped.
    pub fn from_json(value: &Json) -> Option<RunManifest> {
        if value.get("record")?.as_str()? != "manifest" {
            return None;
        }
        let schemes = value
            .get("schemes")?
            .as_arr()?
            .iter()
            .map(|s| s.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        let extra = match value.get("extra") {
            None => Vec::new(),
            Some(obj) => obj
                .as_obj()?
                .iter()
                .map(|(k, v)| v.as_str().map(|v| (k.clone(), v.to_string())))
                .collect::<Option<Vec<_>>>()?,
        };
        Some(RunManifest {
            program: value.get("program")?.as_str()?.to_string(),
            schemes,
            mode: value.get("mode")?.as_str()?.to_string(),
            trace: value.get("trace")?.as_str()?.to_string(),
            seed: value.get("seed").and_then(Json::as_u64),
            refs: value.get("refs").and_then(Json::as_u64),
            wall_secs: value.get("wall_secs")?.as_f64()?,
            extra,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest::new("simulate")
            .schemes(["Dir0B", "Dragon"])
            .mode("single-pass")
            .trace("synth:pops(cpus=16)")
            .seed(0xD1A5)
            .refs(100_000)
            .wall_secs(1.25)
            .extra("caches", "16");
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn optional_fields_stay_optional() {
        let m = RunManifest::new("verify").mode("bfs").trace("model");
        let json = m.to_json();
        assert!(json.get("seed").is_none());
        assert!(json.get("refs").is_none());
        assert_eq!(RunManifest::from_json(&json).unwrap(), m);
    }
}
