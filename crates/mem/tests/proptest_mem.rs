//! Property tests for the memory substrate: model-based LRU checking for
//! the finite cache, and adversarial probing of the coherence oracle.

use std::collections::HashMap;

use proptest::prelude::*;

use dirsim_mem::{
    BlockAddr, CacheGeometry, CacheId, CacheStorage, FiniteCache, InfiniteCache, OracleViolation,
    ShadowMemory,
};

/// A reference model of an LRU set-associative cache.
#[derive(Debug, Default)]
struct ModelCache {
    /// set index -> (block -> last-touch tick)
    sets: HashMap<u64, HashMap<u64, u64>>,
    tick: u64,
}

impl ModelCache {
    fn set_of(&self, geometry: CacheGeometry, block: u64) -> u64 {
        block & u64::from(geometry.sets - 1)
    }

    fn touch(&mut self, geometry: CacheGeometry, block: u64) -> bool {
        self.tick += 1;
        let set = self.set_of(geometry, block);
        if let Some(slot) = self.sets.entry(set).or_default().get_mut(&block) {
            *slot = self.tick;
            true
        } else {
            false
        }
    }

    fn insert(&mut self, geometry: CacheGeometry, block: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(geometry, block);
        let set = self.sets.entry(set_idx).or_default();
        if let std::collections::hash_map::Entry::Occupied(mut e) = set.entry(block) {
            e.insert(tick);
            return None;
        }
        let mut victim = None;
        if set.len() >= geometry.ways as usize {
            let (&lru, _) = set
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .expect("full set is non-empty");
            set.remove(&lru);
            victim = Some(lru);
        }
        set.insert(block, tick);
        victim
    }

    fn remove(&mut self, geometry: CacheGeometry, block: u64) -> bool {
        let set = self.set_of(geometry, block);
        self.sets
            .get_mut(&set)
            .is_some_and(|s| s.remove(&block).is_some())
    }

    fn len(&self) -> usize {
        self.sets.values().map(HashMap::len).sum()
    }
}

#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Touch(u64),
    Insert(u64),
    Remove(u64),
}

fn cache_ops(blocks: u64, len: usize) -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        (0..3u8, 0..blocks).prop_map(|(kind, b)| match kind {
            0 => CacheOp::Touch(b),
            1 => CacheOp::Insert(b),
            _ => CacheOp::Remove(b),
        }),
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The finite cache agrees with a straightforward LRU model on every
    /// operation outcome.
    #[test]
    fn finite_cache_matches_lru_model(
        ops in cache_ops(64, 300),
        sets_log in 0u32..4,
        ways in 1u32..5,
    ) {
        let geometry = CacheGeometry { sets: 1 << sets_log, ways };
        let mut real: FiniteCache<u64> = FiniteCache::new(geometry).unwrap();
        let mut model = ModelCache::default();
        for op in ops {
            match op {
                CacheOp::Touch(b) => {
                    let got = real.touch(BlockAddr::new(b)).is_some();
                    let want = model.touch(geometry, b);
                    prop_assert_eq!(got, want, "touch({})", b);
                }
                CacheOp::Insert(b) => {
                    let got = real.insert(BlockAddr::new(b), b).map(|(v, _)| v.raw());
                    let want = model.insert(geometry, b);
                    prop_assert_eq!(got, want, "insert({})", b);
                }
                CacheOp::Remove(b) => {
                    let got = real.remove(BlockAddr::new(b)).is_some();
                    let want = model.remove(geometry, b);
                    prop_assert_eq!(got, want, "remove({})", b);
                }
            }
            prop_assert_eq!(real.len(), model.len());
            prop_assert!(real.len() <= real.capacity());
        }
    }

    /// The infinite cache is a plain map: everything inserted stays.
    #[test]
    fn infinite_cache_retains_everything(blocks in prop::collection::vec(0u64..1000, 1..200)) {
        let mut c = InfiniteCache::new();
        for &b in &blocks {
            prop_assert!(c.insert(BlockAddr::new(b), b).is_none());
        }
        for &b in &blocks {
            prop_assert_eq!(c.peek(BlockAddr::new(b)), Some(&b));
        }
    }

    /// Legal oracle walks never report violations: fills from fresh
    /// sources, writes by holders, write-backs before invalidating dirty
    /// copies.
    #[test]
    fn oracle_accepts_legal_histories(
        script in prop::collection::vec((0u32..4, 0u8..4), 1..200)
    ) {
        let mut oracle = ShadowMemory::new();
        let block = BlockAddr::new(0);
        // Track a legal single-writer protocol by hand.
        let mut holders: Vec<u32> = Vec::new();
        let mut dirty: Option<u32> = None;
        for (cache, action) in script {
            let c = CacheId::new(cache);
            match action {
                // Acquire a clean copy.
                0 => {
                    if let Some(d) = dirty {
                        oracle.write_back(CacheId::new(d), block).unwrap();
                        dirty = None;
                    }
                    oracle.fill_from_memory(c, block).unwrap();
                    if !holders.contains(&cache) {
                        holders.push(cache);
                    }
                }
                // Write: invalidate others first.
                1 => {
                    if !holders.contains(&cache) {
                        if let Some(d) = dirty {
                            oracle.write_back(CacheId::new(d), block).unwrap();
                            dirty = None;
                        }
                        oracle.fill_from_memory(c, block).unwrap();
                        holders.push(cache);
                    }
                    for &h in holders.iter().filter(|&&h| h != cache) {
                        if dirty == Some(h) {
                            oracle.write_back(CacheId::new(h), block).unwrap();
                        }
                        oracle.invalidate(CacheId::new(h), block).unwrap();
                    }
                    holders.retain(|&h| h == cache);
                    oracle.write(c, block).unwrap();
                    dirty = Some(cache);
                }
                // Read own copy if held.
                2 => {
                    if holders.contains(&cache)
                        && (dirty.is_none() || dirty == Some(cache))
                    {
                        oracle.check_read(c, block).unwrap();
                    }
                }
                // Write back if dirty holder.
                _ => {
                    if dirty == Some(cache) {
                        oracle.write_back(c, block).unwrap();
                        dirty = None;
                    }
                }
            }
        }
    }

    /// The oracle always catches a planted stale read.
    #[test]
    fn oracle_detects_planted_staleness(writers in 1u32..4) {
        let mut oracle = ShadowMemory::new();
        let block = BlockAddr::new(9);
        oracle.fill_from_memory(CacheId::new(0), block).unwrap();
        oracle.fill_from_memory(CacheId::new(writers), block).unwrap();
        for _ in 0..writers {
            oracle.write(CacheId::new(writers), block).unwrap();
        }
        // Cache 0 was never invalidated or updated: its read must fail.
        let err = oracle.check_read(CacheId::new(0), block).unwrap_err();
        let is_stale = matches!(err, OracleViolation::StaleRead { .. });
        prop_assert!(is_stale);
    }
}
