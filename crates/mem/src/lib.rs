//! # dirsim-mem
//!
//! Memory-system substrate for the directory-scheme evaluation: block
//! addressing ([`block::BlockMap`]), infinite and finite cache storage
//! ([`cache`]), process- vs processor-based sharing attribution and cold-miss
//! tracking ([`sharing`]), and a protocol-independent coherence-correctness
//! oracle ([`oracle::ShadowMemory`]).
//!
//! The paper simulates infinite caches with 16-byte blocks so that all
//! remaining misses are either cold (excluded from cost) or induced by
//! coherence; this crate provides exactly those mechanics, plus the finite
//! set-associative cache the paper sketches as a first-order extension.
//!
//! ```
//! use dirsim_mem::block::BlockMap;
//! use dirsim_mem::cache::{CacheStorage, InfiniteCache};
//! use dirsim_trace::Addr;
//!
//! let blocks = BlockMap::paper(); // 16-byte blocks
//! let mut cache = InfiniteCache::new();
//! cache.insert(blocks.block_of(Addr::new(0x40)), "line state");
//! assert_eq!(cache.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod cache;
pub mod fxmap;
pub mod oracle;
pub mod sharing;

pub use block::{BlockAddr, BlockMap};
pub use cache::{
    CacheGeometry, CacheId, CacheStorage, FiniteCache, InfiniteCache, InvalidGeometry,
};
pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use oracle::{CanonicalBlock, OracleViolation, ShadowMemory};
pub use sharing::{FirstRefTracker, SharingModel};
