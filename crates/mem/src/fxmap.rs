//! A fast, non-cryptographic hasher for hot-path block maps.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant but
//! costs tens of nanoseconds per `u64` key — comparable to the whole
//! protocol transition it guards in the step loop. Simulation block maps
//! hash attacker-free `BlockAddr`/`CacheId` keys, so we use an
//! FxHash-style multiply-xor fold instead (the same construction rustc
//! uses for its interning tables), hand-rolled here to keep the workspace
//! dependency-free.
//!
//! Determinism note: unlike SipHash, [`FxHasher`] is unseeded, so map
//! iteration order is stable across runs — but callers must still not
//! depend on it; every observable ordering in the simulator goes through
//! an explicit sort (e.g. `StateSnapshot::from_blocks` sorts by block
//! address).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply constant from the Firefox/rustc FxHash fold.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-xor folding hasher; not DoS-resistant, for trusted keys only.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.fold(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by trusted simulation ids (block addresses, cache
/// ids) using the fast fold hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` twin of [`FxHashMap`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockAddr;

    #[test]
    fn map_round_trips_block_addrs() {
        let mut m: FxHashMap<BlockAddr, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(BlockAddr::new(i), i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&BlockAddr::new(i)), Some(&(i as u32)));
        }
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let one = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(one(42), one(42));
        // Sequential keys must not collapse onto the low bits HashMap uses.
        let mut low: Vec<u64> = (0..64).map(|n| one(n) >> 57).collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() > 16, "top-bit spread too weak: {}", low.len());
    }

    #[test]
    fn byte_slices_match_length_prefix_behaviour() {
        let mut a = FxHasher::default();
        a.write(b"block-map");
        let mut b = FxHasher::default();
        b.write(b"block-maq");
        assert_ne!(a.finish(), b.finish());
    }
}
