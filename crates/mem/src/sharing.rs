//! Sharing identity and first-reference tracking.
//!
//! §4.4 of the paper: the ATUM traces exhibit some sharing induced purely by
//! process migration. Since a large machine would minimise migration, the
//! paper attributes cached data to *processes* rather than processors — a
//! block is shared only if more than one process touches it. The authors
//! also measured the processor-based attribution and found little
//! difference. [`SharingModel`] selects between the two attributions.
//!
//! [`FirstRefTracker`] implements the paper's cold-miss exclusion (§4): the
//! first reference to each block in the trace would miss in a uniprocessor
//! infinite cache too, so it is classified separately (`rm-first-ref` /
//! `wm-first-ref`) and excluded from coherence cost.

use crate::fxmap::FxHashSet;

use dirsim_trace::MemRef;

use crate::block::BlockAddr;
use crate::cache::CacheId;

/// How references are attributed to caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SharingModel {
    /// One cache per *process* — the paper's primary model, which excludes
    /// migration-induced sharing.
    #[default]
    PerProcess,
    /// One cache per *processor* — the physical attribution.
    PerProcessor,
}

impl SharingModel {
    /// The cache a reference is attributed to under this model.
    ///
    /// # Examples
    ///
    /// ```
    /// use dirsim_mem::sharing::SharingModel;
    /// use dirsim_mem::cache::CacheId;
    /// use dirsim_trace::{MemRef, CpuId, ProcessId, Addr};
    ///
    /// let r = MemRef::read(CpuId::new(2), ProcessId::new(5), Addr::new(0));
    /// assert_eq!(SharingModel::PerProcess.cache_of(&r), CacheId::new(5));
    /// assert_eq!(SharingModel::PerProcessor.cache_of(&r), CacheId::new(2));
    /// ```
    pub fn cache_of(self, r: &MemRef) -> CacheId {
        match self {
            SharingModel::PerProcess => CacheId::new(r.pid.index() as u32),
            SharingModel::PerProcessor => CacheId::new(r.cpu.index() as u32),
        }
    }
}

impl std::fmt::Display for SharingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharingModel::PerProcess => f.write_str("per-process"),
            SharingModel::PerProcessor => f.write_str("per-processor"),
        }
    }
}

/// Tracks which blocks have been referenced at least once in the trace.
///
/// The *first* reference to a block is a cold miss that a uniprocessor
/// infinite cache would also take; the paper counts it separately and
/// excludes it from coherence cost.
#[derive(Debug, Clone, Default)]
pub struct FirstRefTracker {
    seen: FxHashSet<BlockAddr>,
}

impl FirstRefTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a reference to `block`, returning `true` iff this is the
    /// first reference to that block in the trace.
    pub fn observe(&mut self, block: BlockAddr) -> bool {
        self.seen.insert(block)
    }

    /// Whether `block` has been referenced before.
    pub fn is_known(&self, block: BlockAddr) -> bool {
        self.seen.contains(&block)
    }

    /// Number of distinct blocks referenced so far.
    pub fn distinct_blocks(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_trace::{Addr, CpuId, ProcessId};

    #[test]
    fn per_process_attribution() {
        let r = MemRef::read(CpuId::new(1), ProcessId::new(9), Addr::new(0));
        assert_eq!(SharingModel::PerProcess.cache_of(&r), CacheId::new(9));
    }

    #[test]
    fn per_processor_attribution() {
        let r = MemRef::read(CpuId::new(1), ProcessId::new(9), Addr::new(0));
        assert_eq!(SharingModel::PerProcessor.cache_of(&r), CacheId::new(1));
    }

    #[test]
    fn default_model_is_per_process() {
        assert_eq!(SharingModel::default(), SharingModel::PerProcess);
    }

    #[test]
    fn display_names() {
        assert_eq!(SharingModel::PerProcess.to_string(), "per-process");
        assert_eq!(SharingModel::PerProcessor.to_string(), "per-processor");
    }

    #[test]
    fn first_ref_tracker_reports_first_only_once() {
        let mut t = FirstRefTracker::new();
        let b = BlockAddr::new(7);
        assert!(t.observe(b));
        assert!(!t.observe(b));
        assert!(t.is_known(b));
        assert!(!t.is_known(BlockAddr::new(8)));
        assert_eq!(t.distinct_blocks(), 1);
    }

    #[test]
    fn tracker_counts_distinct_blocks() {
        let mut t = FirstRefTracker::new();
        for i in 0..10 {
            t.observe(BlockAddr::new(i % 5));
        }
        assert_eq!(t.distinct_blocks(), 5);
    }
}
