//! Coherence-correctness oracle.
//!
//! [`ShadowMemory`] tracks, independently of any protocol, a version number
//! per block: every write bumps the block's global version, and each copy
//! (per-cache and main-memory) records which version it reflects. The
//! simulation engine feeds the oracle the *data movements* a protocol
//! claims to perform (fills, write-backs, invalidations, updates), and the
//! oracle checks the fundamental coherence property: **a processor never
//! reads a stale copy** (and a dirty datum is never silently lost).
//!
//! This is how the test suite establishes that each protocol state machine
//! — directory or snoopy — is not just cheap but *correct*.

use std::collections::HashMap;
use std::fmt;

use crate::block::BlockAddr;
use crate::cache::CacheId;

/// A violation of coherence detected by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleViolation {
    /// A cache read a copy that does not reflect the latest write.
    StaleRead {
        /// Offending cache.
        cache: CacheId,
        /// Block read.
        block: BlockAddr,
        /// Version the cache's copy reflects.
        copy_version: u64,
        /// Latest version of the block.
        latest: u64,
    },
    /// A fill was supplied from main memory while memory was stale.
    StaleMemorySupply {
        /// Block supplied.
        block: BlockAddr,
        /// Version memory holds.
        memory_version: u64,
        /// Latest version of the block.
        latest: u64,
    },
    /// A fill was supplied by a cache that holds no copy of the block.
    SupplierHasNoCopy {
        /// Claimed supplier.
        supplier: CacheId,
        /// Block supplied.
        block: BlockAddr,
    },
    /// A cache wrote (or wrote back) a block it does not hold.
    WriterHasNoCopy {
        /// Offending cache.
        cache: CacheId,
        /// Block written.
        block: BlockAddr,
    },
    /// A dirty copy was invalidated without being written back first, losing
    /// the only up-to-date copy.
    DirtyCopyLost {
        /// Cache whose copy was dropped.
        cache: CacheId,
        /// Block lost.
        block: BlockAddr,
        /// Version that was lost.
        lost_version: u64,
    },
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::StaleRead {
                cache,
                block,
                copy_version,
                latest,
            } => write!(
                f,
                "stale read: {cache} read {block} at version {copy_version}, latest is {latest}"
            ),
            OracleViolation::StaleMemorySupply {
                block,
                memory_version,
                latest,
            } => write!(
                f,
                "stale memory supply of {block}: memory at {memory_version}, latest {latest}"
            ),
            OracleViolation::SupplierHasNoCopy { supplier, block } => {
                write!(f, "{supplier} supplied {block} without holding a copy")
            }
            OracleViolation::WriterHasNoCopy { cache, block } => {
                write!(f, "{cache} wrote {block} without holding a copy")
            }
            OracleViolation::DirtyCopyLost {
                cache,
                block,
                lost_version,
            } => write!(
                f,
                "dirty copy of {block} (version {lost_version}) lost when invalidating {cache}"
            ),
        }
    }
}

impl std::error::Error for OracleViolation {}

#[derive(Debug, Clone, Default)]
struct ShadowBlock {
    /// Version of the most recent write anywhere.
    latest: u64,
    /// Version main memory reflects.
    memory: u64,
    /// Versions each cached copy reflects.
    copies: HashMap<CacheId, u64>,
}

/// Protocol-independent shadow of every block's version state.
///
/// See the module docs for the model. All methods are fed by the simulation
/// engine as the protocol under test announces data movements.
#[derive(Debug, Clone, Default)]
pub struct ShadowMemory {
    blocks: HashMap<BlockAddr, ShadowBlock>,
}

impl ShadowMemory {
    /// Creates an empty shadow.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, block: BlockAddr) -> &mut ShadowBlock {
        self.blocks.entry(block).or_default()
    }

    /// A cache filled `block` from main memory.
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::StaleMemorySupply`] if memory does not hold
    /// the latest version.
    pub fn fill_from_memory(
        &mut self,
        cache: CacheId,
        block: BlockAddr,
    ) -> Result<(), OracleViolation> {
        let e = self.entry(block);
        if e.memory != e.latest {
            return Err(OracleViolation::StaleMemorySupply {
                block,
                memory_version: e.memory,
                latest: e.latest,
            });
        }
        e.copies.insert(cache, e.memory);
        Ok(())
    }

    /// A cache filled `block` from another cache (cache-to-cache supply).
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::SupplierHasNoCopy`] if the supplier holds
    /// no copy.
    pub fn fill_from_cache(
        &mut self,
        requester: CacheId,
        supplier: CacheId,
        block: BlockAddr,
    ) -> Result<(), OracleViolation> {
        let e = self.entry(block);
        let Some(&v) = e.copies.get(&supplier) else {
            return Err(OracleViolation::SupplierHasNoCopy { supplier, block });
        };
        e.copies.insert(requester, v);
        Ok(())
    }

    /// A cache performed a (copy-back) write to its resident copy.
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::WriterHasNoCopy`] if the writer holds no
    /// copy.
    pub fn write(&mut self, cache: CacheId, block: BlockAddr) -> Result<(), OracleViolation> {
        let e = self.entry(block);
        if !e.copies.contains_key(&cache) {
            return Err(OracleViolation::WriterHasNoCopy { cache, block });
        }
        e.latest += 1;
        let latest = e.latest;
        e.copies.insert(cache, latest);
        Ok(())
    }

    /// A cache performed a write-through: the write is applied to the copy
    /// *and* to main memory atomically.
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::WriterHasNoCopy`] if the writer holds no
    /// copy.
    pub fn write_through(
        &mut self,
        cache: CacheId,
        block: BlockAddr,
    ) -> Result<(), OracleViolation> {
        self.write(cache, block)?;
        let e = self.entry(block);
        e.memory = e.latest;
        Ok(())
    }

    /// A cache performed a write that is broadcast as an *update* to every
    /// other cached copy (and, in Dragon, to memory only on displacement —
    /// memory is left stale here).
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::WriterHasNoCopy`] if the writer holds no
    /// copy.
    pub fn write_update(
        &mut self,
        cache: CacheId,
        block: BlockAddr,
    ) -> Result<(), OracleViolation> {
        let e = self.entry(block);
        if !e.copies.contains_key(&cache) {
            return Err(OracleViolation::WriterHasNoCopy { cache, block });
        }
        e.latest += 1;
        let latest = e.latest;
        for v in e.copies.values_mut() {
            *v = latest;
        }
        Ok(())
    }

    /// A cache wrote its copy back to main memory (keeping or dropping the
    /// copy is signalled separately via [`Self::invalidate`]).
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::WriterHasNoCopy`] if the cache holds no
    /// copy.
    pub fn write_back(&mut self, cache: CacheId, block: BlockAddr) -> Result<(), OracleViolation> {
        let e = self.entry(block);
        let Some(&v) = e.copies.get(&cache) else {
            return Err(OracleViolation::WriterHasNoCopy { cache, block });
        };
        e.memory = e.memory.max(v);
        Ok(())
    }

    /// A cache's copy was invalidated (removed).
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::DirtyCopyLost`] if the dropped copy was the
    /// *only* holder of the latest version and memory is stale — the write
    /// would be lost. Invalidating a cache that holds no copy is a no-op
    /// (broadcast invalidates hit everyone).
    pub fn invalidate(&mut self, cache: CacheId, block: BlockAddr) -> Result<(), OracleViolation> {
        let e = self.entry(block);
        let Some(v) = e.copies.remove(&cache) else {
            return Ok(());
        };
        let version_survives = e.memory >= v || e.copies.values().any(|&other| other >= v);
        if !version_survives && v == e.latest {
            return Err(OracleViolation::DirtyCopyLost {
                cache,
                block,
                lost_version: v,
            });
        }
        Ok(())
    }

    /// Checks that `cache` can legally *read* its copy of `block`: the copy
    /// must exist and reflect the latest version.
    ///
    /// # Errors
    ///
    /// Returns [`OracleViolation::StaleRead`] if the copy is stale, or
    /// [`OracleViolation::WriterHasNoCopy`] if there is no copy at all.
    pub fn check_read(&self, cache: CacheId, block: BlockAddr) -> Result<(), OracleViolation> {
        let Some(e) = self.blocks.get(&block) else {
            return Err(OracleViolation::WriterHasNoCopy { cache, block });
        };
        let Some(&v) = e.copies.get(&cache) else {
            return Err(OracleViolation::WriterHasNoCopy { cache, block });
        };
        if v != e.latest {
            return Err(OracleViolation::StaleRead {
                cache,
                block,
                copy_version: v,
                latest: e.latest,
            });
        }
        Ok(())
    }

    /// Whether `cache` currently holds a copy of `block` in the shadow.
    pub fn holds(&self, cache: CacheId, block: BlockAddr) -> bool {
        self.blocks
            .get(&block)
            .is_some_and(|e| e.copies.contains_key(&cache))
    }

    /// Every cache currently holding a copy of `block`, sorted by index.
    ///
    /// Static table extraction (`dirsim-analyze`) cross-checks the sharer
    /// set a protocol *reports* in its canonical state against the copies
    /// the oracle *saw* move.
    pub fn holders(&self, block: BlockAddr) -> Vec<CacheId> {
        let mut holders: Vec<CacheId> = self
            .blocks
            .get(&block)
            .map(|e| e.copies.keys().copied().collect())
            .unwrap_or_default();
        holders.sort_by_key(|c| c.index());
        holders
    }

    /// Number of blocks the shadow is tracking.
    pub fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// A canonical, version-rank-normalised image of the shadow state.
    ///
    /// Absolute version numbers grow monotonically with every write, so two
    /// shadows that will behave identically forever can still differ in raw
    /// counters. This maps each block's versions onto dense ranks and sorts
    /// everything, producing a value suitable as a hash key when exploring
    /// the reachable state space (as `dirsim-verify` does).
    ///
    /// Per block the tuple is `(copies, memory, latest)` where `copies` is a
    /// sorted list of `(cache index, version rank)`.
    pub fn canonical(&self) -> Vec<CanonicalBlock> {
        let mut out: Vec<_> = self
            .blocks
            .iter()
            .map(|(&block, e)| {
                let mut versions: Vec<u64> = e.copies.values().copied().collect();
                versions.push(e.memory);
                versions.push(e.latest);
                versions.sort_unstable();
                versions.dedup();
                let rank = |v: u64| versions.binary_search(&v).expect("own version") as u64;
                let mut copies: Vec<(usize, u64)> = e
                    .copies
                    .iter()
                    .map(|(&cache, &v)| (cache.index(), rank(v)))
                    .collect();
                copies.sort_unstable();
                (block, copies, rank(e.memory), rank(e.latest))
            })
            .collect();
        out.sort_unstable_by_key(|&(block, ..)| block);
        out
    }
}

/// One block's entry in [`ShadowMemory::canonical`]:
/// `(block, sorted (cache index, version rank) copies, memory rank, latest rank)`.
pub type CanonicalBlock = (BlockAddr, Vec<(usize, u64)>, u64, u64);

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr::new(1);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn clean_read_after_memory_fill() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.check_read(c(0), B).unwrap();
    }

    #[test]
    fn read_without_copy_is_flagged() {
        let s = ShadowMemory::new();
        assert!(matches!(
            s.check_read(c(0), B),
            Err(OracleViolation::WriterHasNoCopy { .. })
        ));
    }

    #[test]
    fn stale_read_detected_after_remote_write() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.fill_from_memory(c(1), B).unwrap();
        s.write(c(1), B).unwrap();
        // Cache 0 still holds the old version.
        match s.check_read(c(0), B) {
            Err(OracleViolation::StaleRead {
                copy_version,
                latest,
                ..
            }) => {
                assert_eq!(copy_version, 0);
                assert_eq!(latest, 1);
            }
            other => panic!("expected StaleRead, got {other:?}"),
        }
        // The invalidation protocol fixes this by removing cache 0's copy
        // and refilling from the dirty holder.
        s.invalidate(c(0), B).unwrap();
        s.fill_from_cache(c(0), c(1), B).unwrap();
        s.check_read(c(0), B).unwrap();
    }

    #[test]
    fn memory_supply_after_write_without_writeback_is_stale() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.write(c(0), B).unwrap();
        assert!(matches!(
            s.fill_from_memory(c(1), B),
            Err(OracleViolation::StaleMemorySupply { .. })
        ));
        // After a write-back memory is fresh again.
        s.write_back(c(0), B).unwrap();
        s.fill_from_memory(c(1), B).unwrap();
        s.check_read(c(1), B).unwrap();
    }

    #[test]
    fn supplier_must_hold_copy() {
        let mut s = ShadowMemory::new();
        assert!(matches!(
            s.fill_from_cache(c(0), c(1), B),
            Err(OracleViolation::SupplierHasNoCopy { .. })
        ));
    }

    #[test]
    fn writer_must_hold_copy() {
        let mut s = ShadowMemory::new();
        assert!(matches!(
            s.write(c(0), B),
            Err(OracleViolation::WriterHasNoCopy { .. })
        ));
        assert!(matches!(
            s.write_back(c(0), B),
            Err(OracleViolation::WriterHasNoCopy { .. })
        ));
    }

    #[test]
    fn dirty_copy_loss_detected() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.write(c(0), B).unwrap();
        assert!(matches!(
            s.invalidate(c(0), B),
            Err(OracleViolation::DirtyCopyLost { .. })
        ));
    }

    #[test]
    fn invalidate_clean_copy_is_fine() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.invalidate(c(0), B).unwrap();
        assert!(!s.holds(c(0), B));
    }

    #[test]
    fn invalidate_nonholder_is_noop() {
        let mut s = ShadowMemory::new();
        s.invalidate(c(3), B).unwrap();
    }

    #[test]
    fn write_through_keeps_memory_fresh() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.write_through(c(0), B).unwrap();
        s.fill_from_memory(c(1), B).unwrap();
        s.check_read(c(1), B).unwrap();
    }

    #[test]
    fn write_update_refreshes_all_copies() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.fill_from_memory(c(1), B).unwrap();
        s.fill_from_memory(c(2), B).unwrap();
        s.write_update(c(0), B).unwrap();
        for i in 0..3 {
            s.check_read(c(i), B).unwrap();
        }
        // Memory is stale after an update write (Dragon semantics).
        assert!(matches!(
            s.fill_from_memory(c(3), B),
            Err(OracleViolation::StaleMemorySupply { .. })
        ));
    }

    #[test]
    fn invalidating_updated_copy_is_safe_while_others_hold_it() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), B).unwrap();
        s.fill_from_memory(c(1), B).unwrap();
        s.write_update(c(0), B).unwrap();
        // Another up-to-date copy survives, so dropping one is fine.
        s.invalidate(c(1), B).unwrap();
        s.check_read(c(0), B).unwrap();
    }

    #[test]
    fn violation_display_is_informative() {
        let v = OracleViolation::StaleRead {
            cache: c(2),
            block: B,
            copy_version: 1,
            latest: 3,
        };
        let msg = v.to_string();
        assert!(msg.contains("stale read"));
        assert!(msg.contains("version 1"));
    }

    #[test]
    fn tracked_blocks_counts() {
        let mut s = ShadowMemory::new();
        s.fill_from_memory(c(0), BlockAddr::new(1)).unwrap();
        s.fill_from_memory(c(0), BlockAddr::new(2)).unwrap();
        assert_eq!(s.tracked_blocks(), 2);
        assert!(s.holds(c(0), BlockAddr::new(1)));
    }

    #[test]
    fn holders_lists_copies_sorted() {
        let mut s = ShadowMemory::new();
        let b = BlockAddr::new(1);
        s.fill_from_memory(c(2), b).unwrap();
        s.fill_from_memory(c(0), b).unwrap();
        assert_eq!(s.holders(b), vec![c(0), c(2)]);
        assert!(s.holders(BlockAddr::new(9)).is_empty());
        s.invalidate(c(2), b).unwrap();
        assert_eq!(s.holders(b), vec![c(0)]);
    }

    #[test]
    fn canonical_ignores_absolute_version_counts() {
        // One write vs. three writes by the same sole holder: raw versions
        // differ (1 vs. 3) but the structure is identical.
        let mut a = ShadowMemory::new();
        a.fill_from_memory(c(0), B).unwrap();
        a.write(c(0), B).unwrap();

        let mut b = ShadowMemory::new();
        b.fill_from_memory(c(0), B).unwrap();
        b.write(c(0), B).unwrap();
        b.write(c(0), B).unwrap();
        b.write(c(0), B).unwrap();

        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn canonical_distinguishes_stale_from_fresh_copies() {
        // c1 holds a stale copy in `a`, a fresh one in `b`.
        let mut a = ShadowMemory::new();
        a.fill_from_memory(c(0), B).unwrap();
        a.fill_from_memory(c(1), B).unwrap();
        a.write(c(0), B).unwrap();

        let mut b = ShadowMemory::new();
        b.fill_from_memory(c(0), B).unwrap();
        b.fill_from_memory(c(1), B).unwrap();
        b.write_update(c(0), B).unwrap();

        assert_ne!(a.canonical(), b.canonical());
    }
}
