//! Cache storage.
//!
//! The paper's evaluation uses *infinite* caches so that every miss is a
//! coherence (or cold) miss (§4); [`InfiniteCache`] models that. The paper
//! also notes that finite-cache behaviour can be estimated "to first order by
//! adding the costs due to the finite cache size" — [`FiniteCache`] (a
//! set-associative LRU cache) is provided for that extension and for the
//! ablation benchmarks.
//!
//! Both implement [`CacheStorage`], the interface protocols program against.

use std::collections::HashMap;
use std::fmt;

use crate::block::BlockAddr;

/// Identity of one cache in the coherence system.
///
/// Depending on the experiment's sharing model this maps to a processor or
/// to a process (see [`crate::sharing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheId(u32);

impl CacheId {
    /// Creates a cache identity from a zero-based index.
    pub fn new(index: u32) -> Self {
        CacheId(index)
    }

    /// Returns the zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$#{}", self.0)
    }
}

impl From<u32> for CacheId {
    fn from(value: u32) -> Self {
        CacheId(value)
    }
}

/// Storage interface protocols use to track per-cache line state.
///
/// `L` is the protocol-defined per-line state. Implementations differ only in
/// capacity policy: [`InfiniteCache`] never evicts, [`FiniteCache`] evicts
/// least-recently-used lines.
pub trait CacheStorage<L> {
    /// Looks up a line without affecting replacement state.
    fn peek(&self, block: BlockAddr) -> Option<&L>;

    /// Looks up a line, updating replacement state (an access).
    fn touch(&mut self, block: BlockAddr) -> Option<&mut L>;

    /// Inserts or replaces a line, returning the evicted victim if the
    /// insertion displaced one.
    fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)>;

    /// Removes a line (e.g. on invalidation).
    fn remove(&mut self, block: BlockAddr) -> Option<L>;

    /// Number of resident lines.
    fn len(&self) -> usize;

    /// Whether the cache holds no lines.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Unbounded cache: every block ever inserted stays resident until
/// explicitly removed.
#[derive(Debug, Clone, Default)]
pub struct InfiniteCache<L> {
    lines: HashMap<BlockAddr, L>,
}

impl<L> InfiniteCache<L> {
    /// Creates an empty infinite cache.
    pub fn new() -> Self {
        InfiniteCache {
            lines: HashMap::new(),
        }
    }

    /// Iterates over resident lines in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &L)> {
        self.lines.iter()
    }
}

impl<L> CacheStorage<L> for InfiniteCache<L> {
    fn peek(&self, block: BlockAddr) -> Option<&L> {
        self.lines.get(&block)
    }

    fn touch(&mut self, block: BlockAddr) -> Option<&mut L> {
        self.lines.get_mut(&block)
    }

    fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)> {
        self.lines.insert(block, line);
        None
    }

    fn remove(&mut self, block: BlockAddr) -> Option<L> {
        self.lines.remove(&block)
    }

    fn len(&self) -> usize {
        self.lines.len()
    }
}

/// Geometry of a finite set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity (lines per set).
    pub ways: u32,
}

impl CacheGeometry {
    /// Checks that the geometry is usable by [`FiniteCache`]: a nonzero
    /// power-of-two set count and nonzero associativity.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] otherwise.
    pub fn validate(self) -> Result<(), InvalidGeometry> {
        if self.sets == 0 || !self.sets.is_power_of_two() || self.ways == 0 {
            return Err(InvalidGeometry(self));
        }
        Ok(())
    }
}

/// Error for invalid cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGeometry(pub CacheGeometry);

impl fmt::Display for InvalidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cache geometry: sets={} (power of two required), ways={} (nonzero required)",
            self.0.sets, self.0.ways
        )
    }
}

impl std::error::Error for InvalidGeometry {}

#[derive(Debug, Clone)]
struct Way<L> {
    block: BlockAddr,
    line: L,
    stamp: u64,
}

/// Finite set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct FiniteCache<L> {
    sets: Vec<Vec<Way<L>>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
    resident: usize,
}

impl<L> FiniteCache<L> {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if `sets` is not a power of two or
    /// `ways` is zero.
    pub fn new(geometry: CacheGeometry) -> Result<Self, InvalidGeometry> {
        geometry.validate()?;
        let mut sets = Vec::with_capacity(geometry.sets as usize);
        for _ in 0..geometry.sets {
            sets.push(Vec::with_capacity(geometry.ways as usize));
        }
        Ok(FiniteCache {
            sets,
            ways: geometry.ways as usize,
            set_mask: u64::from(geometry.sets) - 1,
            tick: 0,
            resident: 0,
        })
    }

    /// Total line capacity (`sets * ways`).
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.raw() & self.set_mask) as usize
    }
}

impl<L> CacheStorage<L> for FiniteCache<L> {
    fn peek(&self, block: BlockAddr) -> Option<&L> {
        self.sets[self.set_of(block)]
            .iter()
            .find(|w| w.block == block)
            .map(|w| &w.line)
    }

    fn touch(&mut self, block: BlockAddr) -> Option<&mut L> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(block);
        self.sets[set]
            .iter_mut()
            .find(|w| w.block == block)
            .map(|w| {
                w.stamp = tick;
                &mut w.line
            })
    }

    fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.block == block) {
            w.line = line;
            w.stamp = tick;
            return None;
        }
        if set.len() < ways {
            set.push(Way {
                block,
                line,
                stamp: tick,
            });
            self.resident += 1;
            return None;
        }
        // Evict the LRU way.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i)
            .expect("set is non-empty because ways > 0");
        let victim = std::mem::replace(
            &mut set[victim_idx],
            Way {
                block,
                line,
                stamp: tick,
            },
        );
        Some((victim.block, victim.line))
    }

    fn remove(&mut self, block: BlockAddr) -> Option<L> {
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| w.block == block)?;
        self.resident -= 1;
        Some(set.swap_remove(pos).line)
    }

    fn len(&self) -> usize {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_id_basics() {
        let c = CacheId::new(5);
        assert_eq!(c.index(), 5);
        assert_eq!(CacheId::from(5u32), c);
        assert_eq!(c.to_string(), "$#5");
    }

    #[test]
    fn infinite_cache_insert_and_lookup() {
        let mut c = InfiniteCache::new();
        assert!(c.is_empty());
        assert_eq!(c.insert(BlockAddr::new(1), "a"), None);
        assert_eq!(c.insert(BlockAddr::new(2), "b"), None);
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&"a"));
        assert_eq!(c.len(), 2);
        *c.touch(BlockAddr::new(1)).unwrap() = "c";
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&"c"));
        assert_eq!(c.remove(BlockAddr::new(1)), Some("c"));
        assert_eq!(c.peek(BlockAddr::new(1)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn infinite_cache_never_evicts() {
        let mut c = InfiniteCache::new();
        for i in 0..10_000u64 {
            assert_eq!(c.insert(BlockAddr::new(i), i), None);
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    fn finite_cache_rejects_bad_geometry() {
        assert!(FiniteCache::<u8>::new(CacheGeometry { sets: 3, ways: 1 }).is_err());
        assert!(FiniteCache::<u8>::new(CacheGeometry { sets: 0, ways: 1 }).is_err());
        assert!(FiniteCache::<u8>::new(CacheGeometry { sets: 4, ways: 0 }).is_err());
        let e = FiniteCache::<u8>::new(CacheGeometry { sets: 3, ways: 0 }).unwrap_err();
        assert!(e.to_string().contains("sets=3"));
    }

    #[test]
    fn finite_cache_evicts_lru() {
        // Direct-mapped-by-set: 1 set, 2 ways.
        let mut c = FiniteCache::new(CacheGeometry { sets: 1, ways: 2 }).unwrap();
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.insert(BlockAddr::new(1), 'a'), None);
        assert_eq!(c.insert(BlockAddr::new(2), 'b'), None);
        // Touch 1 so that 2 becomes LRU.
        assert!(c.touch(BlockAddr::new(1)).is_some());
        let evicted = c.insert(BlockAddr::new(3), 'c');
        assert_eq!(evicted, Some((BlockAddr::new(2), 'b')));
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&'a'));
        assert_eq!(c.peek(BlockAddr::new(3)), Some(&'c'));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn finite_cache_reinsert_updates_in_place() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 1, ways: 1 }).unwrap();
        assert_eq!(c.insert(BlockAddr::new(1), 'a'), None);
        assert_eq!(c.insert(BlockAddr::new(1), 'b'), None);
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&'b'));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn finite_cache_sets_partition_blocks() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 2, ways: 1 }).unwrap();
        // Blocks 0 and 2 map to set 0; block 1 maps to set 1.
        assert_eq!(c.insert(BlockAddr::new(0), 'a'), None);
        assert_eq!(c.insert(BlockAddr::new(1), 'b'), None);
        let evicted = c.insert(BlockAddr::new(2), 'c');
        assert_eq!(evicted, Some((BlockAddr::new(0), 'a')));
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&'b'));
    }

    #[test]
    fn finite_cache_remove() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 2, ways: 2 }).unwrap();
        c.insert(BlockAddr::new(4), 'x');
        assert_eq!(c.remove(BlockAddr::new(4)), Some('x'));
        assert_eq!(c.remove(BlockAddr::new(4)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn finite_cache_len_tracks_residency() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 4, ways: 2 }).unwrap();
        for i in 0..100u64 {
            c.insert(BlockAddr::new(i), i);
        }
        assert_eq!(c.len(), c.capacity());
    }
}
