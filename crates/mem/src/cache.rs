//! Cache storage.
//!
//! The paper's evaluation uses *infinite* caches so that every miss is a
//! coherence (or cold) miss (§4); [`InfiniteCache`] models that. The paper
//! also notes that finite-cache behaviour can be estimated "to first order by
//! adding the costs due to the finite cache size" — [`FiniteCache`] (a
//! set-associative LRU cache) is provided for that extension and for the
//! ablation benchmarks.
//!
//! Both implement [`CacheStorage`], the interface protocols program against.

use crate::fxmap::FxHashMap;
use std::fmt;

use crate::block::BlockAddr;

/// Identity of one cache in the coherence system.
///
/// Depending on the experiment's sharing model this maps to a processor or
/// to a process (see [`crate::sharing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheId(u32);

impl CacheId {
    /// Creates a cache identity from a zero-based index.
    pub fn new(index: u32) -> Self {
        CacheId(index)
    }

    /// Returns the zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$#{}", self.0)
    }
}

impl From<u32> for CacheId {
    fn from(value: u32) -> Self {
        CacheId(value)
    }
}

/// Storage interface protocols use to track per-cache line state.
///
/// `L` is the protocol-defined per-line state. Implementations differ only in
/// capacity policy: [`InfiniteCache`] never evicts, [`FiniteCache`] evicts
/// least-recently-used lines.
pub trait CacheStorage<L> {
    /// Looks up a line without affecting replacement state.
    fn peek(&self, block: BlockAddr) -> Option<&L>;

    /// Looks up a line, updating replacement state (an access).
    fn touch(&mut self, block: BlockAddr) -> Option<&mut L>;

    /// Inserts or replaces a line, returning the evicted victim if the
    /// insertion displaced one.
    fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)>;

    /// Removes a line (e.g. on invalidation).
    fn remove(&mut self, block: BlockAddr) -> Option<L>;

    /// Number of resident lines.
    fn len(&self) -> usize;

    /// Whether the cache holds no lines.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Unbounded cache: every block ever inserted stays resident until
/// explicitly removed.
#[derive(Debug, Clone, Default)]
pub struct InfiniteCache<L> {
    lines: FxHashMap<BlockAddr, L>,
}

impl<L> InfiniteCache<L> {
    /// Creates an empty infinite cache.
    pub fn new() -> Self {
        InfiniteCache {
            lines: FxHashMap::default(),
        }
    }

    /// Iterates over resident lines in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &L)> {
        self.lines.iter()
    }
}

impl<L> CacheStorage<L> for InfiniteCache<L> {
    fn peek(&self, block: BlockAddr) -> Option<&L> {
        self.lines.get(&block)
    }

    fn touch(&mut self, block: BlockAddr) -> Option<&mut L> {
        self.lines.get_mut(&block)
    }

    fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)> {
        self.lines.insert(block, line);
        None
    }

    fn remove(&mut self, block: BlockAddr) -> Option<L> {
        self.lines.remove(&block)
    }

    fn len(&self) -> usize {
        self.lines.len()
    }
}

/// Geometry of a finite set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity (lines per set).
    pub ways: u32,
}

impl CacheGeometry {
    /// Checks that the geometry is usable by [`FiniteCache`]: a nonzero
    /// power-of-two set count and nonzero associativity.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] otherwise.
    pub fn validate(self) -> Result<(), InvalidGeometry> {
        if self.sets == 0 || !self.sets.is_power_of_two() || self.ways == 0 {
            return Err(InvalidGeometry(self));
        }
        Ok(())
    }
}

/// Error for invalid cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGeometry(pub CacheGeometry);

impl fmt::Display for InvalidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cache geometry: sets={} (power of two required), ways={} (nonzero required)",
            self.0.sets, self.0.ways
        )
    }
}

impl std::error::Error for InvalidGeometry {}

#[derive(Debug, Clone)]
struct Way<L> {
    block: BlockAddr,
    line: L,
    stamp: u64,
}

/// Finite set-associative cache with LRU replacement.
///
/// Storage is one contiguous slab of `sets × ways` slots plus a per-set
/// occupancy count — a set lookup is a single computed offset into the
/// slab rather than a pointer chase through a per-set allocation, which
/// matters in the engine's residency-tracking hot loop. Slots past a
/// set's occupancy hold default-initialised filler that is never read
/// (hence the `L: Default` bound).
#[derive(Debug, Clone)]
pub struct FiniteCache<L> {
    slots: Vec<Way<L>>,
    /// Resident line count per set (`≤ ways`).
    lens: Vec<u32>,
    ways: usize,
    set_mask: u64,
    tick: u64,
    resident: usize,
}

impl<L: Default> FiniteCache<L> {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if `sets` is not a power of two or
    /// `ways` is zero.
    pub fn new(geometry: CacheGeometry) -> Result<Self, InvalidGeometry> {
        geometry.validate()?;
        let capacity = geometry.sets as usize * geometry.ways as usize;
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || Way {
            block: BlockAddr::new(0),
            line: L::default(),
            stamp: 0,
        });
        Ok(FiniteCache {
            slots,
            lens: vec![0; geometry.sets as usize],
            ways: geometry.ways as usize,
            set_mask: u64::from(geometry.sets) - 1,
            tick: 0,
            resident: 0,
        })
    }
}

impl<L> FiniteCache<L> {
    /// Total line capacity (`sets * ways`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.raw() & self.set_mask) as usize
    }

    /// The occupied slots of one set.
    #[inline]
    fn set(&self, set: usize) -> &[Way<L>] {
        &self.slots[set * self.ways..set * self.ways + self.lens[set] as usize]
    }

    /// The occupied slots of one set, mutably.
    #[inline]
    fn set_mut(&mut self, set: usize) -> &mut [Way<L>] {
        &mut self.slots[set * self.ways..set * self.ways + self.lens[set] as usize]
    }

    /// A fused residency-check-plus-access: on a hit this behaves exactly
    /// like [`CacheStorage::touch`] (the access tick advances and the line
    /// is re-stamped most-recent); on a miss it mutates *nothing* — not
    /// even the tick — and returns `None`. Callers that must keep the LRU
    /// tick sequence identical to a plain `touch`-then-`insert` miss path
    /// follow a `None` here with exactly that pair, which replays the same
    /// two tick increments `touch` + `insert` would have produced.
    #[inline]
    pub fn touch_if_resident(&mut self, block: BlockAddr) -> Option<&mut L> {
        let set = self.set_of(block);
        let start = set * self.ways;
        let end = start + self.lens[set] as usize;
        let tick = self.tick + 1;
        // Direct field indexing (not the `set_mut` helper) keeps the slab
        // and tick borrows disjoint.
        let w = self.slots[start..end]
            .iter_mut()
            .find(|w| w.block == block)?;
        w.stamp = tick;
        self.tick = tick;
        Some(&mut w.line)
    }

    /// The victim that inserting `block` *would* displace, without
    /// mutating any replacement state: `None` when the block is already
    /// resident or its set still has a free way. Mirrors
    /// [`CacheStorage::insert`]'s LRU choice exactly (first-seen minimum
    /// stamp), so callers can pre-compute eviction consequences before
    /// committing the access.
    pub fn would_evict(&self, block: BlockAddr) -> Option<BlockAddr> {
        let set = self.set(self.set_of(block));
        if set.iter().any(|w| w.block == block) || set.len() < self.ways {
            return None;
        }
        set.iter().min_by_key(|w| w.stamp).map(|w| w.block)
    }
}

impl<L: Default> CacheStorage<L> for FiniteCache<L> {
    fn peek(&self, block: BlockAddr) -> Option<&L> {
        self.set(self.set_of(block))
            .iter()
            .find(|w| w.block == block)
            .map(|w| &w.line)
    }

    fn touch(&mut self, block: BlockAddr) -> Option<&mut L> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(block);
        self.set_mut(set)
            .iter_mut()
            .find(|w| w.block == block)
            .map(|w| {
                w.stamp = tick;
                &mut w.line
            })
    }

    fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(block);
        let len = self.lens[set_idx] as usize;
        let start = set_idx * self.ways;
        let set = &mut self.slots[start..start + len];
        if let Some(w) = set.iter_mut().find(|w| w.block == block) {
            w.line = line;
            w.stamp = tick;
            return None;
        }
        if len < self.ways {
            self.slots[start + len] = Way {
                block,
                line,
                stamp: tick,
            };
            self.lens[set_idx] += 1;
            self.resident += 1;
            return None;
        }
        // Evict the LRU way.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i)
            .expect("set is non-empty because ways > 0");
        let victim = std::mem::replace(
            &mut set[victim_idx],
            Way {
                block,
                line,
                stamp: tick,
            },
        );
        Some((victim.block, victim.line))
    }

    fn remove(&mut self, block: BlockAddr) -> Option<L> {
        let set_idx = self.set_of(block);
        let len = self.lens[set_idx] as usize;
        let start = set_idx * self.ways;
        let set = &mut self.slots[start..start + len];
        let pos = set.iter().position(|w| w.block == block)?;
        // Move the last occupied slot into the vacated position (the
        // order within a set carries no meaning — LRU is by stamp).
        set.swap(pos, len - 1);
        let line = std::mem::take(&mut set[len - 1].line);
        self.lens[set_idx] -= 1;
        self.resident -= 1;
        Some(line)
    }

    fn len(&self) -> usize {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_id_basics() {
        let c = CacheId::new(5);
        assert_eq!(c.index(), 5);
        assert_eq!(CacheId::from(5u32), c);
        assert_eq!(c.to_string(), "$#5");
    }

    #[test]
    fn infinite_cache_insert_and_lookup() {
        let mut c = InfiniteCache::new();
        assert!(c.is_empty());
        assert_eq!(c.insert(BlockAddr::new(1), "a"), None);
        assert_eq!(c.insert(BlockAddr::new(2), "b"), None);
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&"a"));
        assert_eq!(c.len(), 2);
        *c.touch(BlockAddr::new(1)).unwrap() = "c";
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&"c"));
        assert_eq!(c.remove(BlockAddr::new(1)), Some("c"));
        assert_eq!(c.peek(BlockAddr::new(1)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn infinite_cache_never_evicts() {
        let mut c = InfiniteCache::new();
        for i in 0..10_000u64 {
            assert_eq!(c.insert(BlockAddr::new(i), i), None);
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    fn finite_cache_rejects_bad_geometry() {
        assert!(FiniteCache::<u8>::new(CacheGeometry { sets: 3, ways: 1 }).is_err());
        assert!(FiniteCache::<u8>::new(CacheGeometry { sets: 0, ways: 1 }).is_err());
        assert!(FiniteCache::<u8>::new(CacheGeometry { sets: 4, ways: 0 }).is_err());
        let e = FiniteCache::<u8>::new(CacheGeometry { sets: 3, ways: 0 }).unwrap_err();
        assert!(e.to_string().contains("sets=3"));
    }

    #[test]
    fn finite_cache_evicts_lru() {
        // Direct-mapped-by-set: 1 set, 2 ways.
        let mut c = FiniteCache::new(CacheGeometry { sets: 1, ways: 2 }).unwrap();
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.insert(BlockAddr::new(1), 'a'), None);
        assert_eq!(c.insert(BlockAddr::new(2), 'b'), None);
        // Touch 1 so that 2 becomes LRU.
        assert!(c.touch(BlockAddr::new(1)).is_some());
        let evicted = c.insert(BlockAddr::new(3), 'c');
        assert_eq!(evicted, Some((BlockAddr::new(2), 'b')));
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&'a'));
        assert_eq!(c.peek(BlockAddr::new(3)), Some(&'c'));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn finite_cache_reinsert_updates_in_place() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 1, ways: 1 }).unwrap();
        assert_eq!(c.insert(BlockAddr::new(1), 'a'), None);
        assert_eq!(c.insert(BlockAddr::new(1), 'b'), None);
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&'b'));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn finite_cache_sets_partition_blocks() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 2, ways: 1 }).unwrap();
        // Blocks 0 and 2 map to set 0; block 1 maps to set 1.
        assert_eq!(c.insert(BlockAddr::new(0), 'a'), None);
        assert_eq!(c.insert(BlockAddr::new(1), 'b'), None);
        let evicted = c.insert(BlockAddr::new(2), 'c');
        assert_eq!(evicted, Some((BlockAddr::new(0), 'a')));
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&'b'));
    }

    #[test]
    fn finite_cache_remove() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 2, ways: 2 }).unwrap();
        c.insert(BlockAddr::new(4), 'x');
        assert_eq!(c.remove(BlockAddr::new(4)), Some('x'));
        assert_eq!(c.remove(BlockAddr::new(4)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn finite_cache_len_tracks_residency() {
        let mut c = FiniteCache::new(CacheGeometry { sets: 4, ways: 2 }).unwrap();
        for i in 0..100u64 {
            c.insert(BlockAddr::new(i), i);
        }
        assert_eq!(c.len(), c.capacity());
    }
}
