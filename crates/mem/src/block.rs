//! Block addressing.
//!
//! The paper simulates 16-byte (4-word) blocks throughout (§4). [`BlockMap`]
//! converts byte addresses into [`BlockAddr`] block numbers for a given
//! power-of-two block size.

use std::fmt;

use dirsim_trace::Addr;

/// A cache-block number (byte address divided by block size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block number directly.
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Returns the raw block number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(value: u64) -> Self {
        BlockAddr(value)
    }
}

/// Error returned when constructing a [`BlockMap`] with an invalid size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBlockSize(pub u32);

impl fmt::Display for InvalidBlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block size {} is not a positive power of two", self.0)
    }
}

impl std::error::Error for InvalidBlockSize {}

/// Maps byte addresses to block numbers for a fixed block size.
///
/// # Examples
///
/// ```
/// use dirsim_mem::block::BlockMap;
/// use dirsim_trace::Addr;
///
/// let map = BlockMap::new(16).expect("16 is a power of two");
/// assert_eq!(map.block_of(Addr::new(0x0)), map.block_of(Addr::new(0xF)));
/// assert_ne!(map.block_of(Addr::new(0xF)), map.block_of(Addr::new(0x10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMap {
    shift: u32,
}

impl BlockMap {
    /// The paper's block size: 4 words of 4 bytes.
    pub const PAPER_BLOCK_BYTES: u32 = 16;

    /// Creates a map for the given block size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBlockSize`] unless `bytes` is a positive power of
    /// two.
    pub fn new(bytes: u32) -> Result<Self, InvalidBlockSize> {
        if bytes == 0 || !bytes.is_power_of_two() {
            return Err(InvalidBlockSize(bytes));
        }
        Ok(BlockMap {
            shift: bytes.trailing_zeros(),
        })
    }

    /// The map for the paper's 16-byte blocks.
    pub fn paper() -> Self {
        BlockMap::new(Self::PAPER_BLOCK_BYTES).expect("16 is a power of two")
    }

    /// Block size in bytes.
    pub fn block_bytes(self) -> u32 {
        1 << self.shift
    }

    /// The block containing a byte address.
    pub fn block_of(self, addr: Addr) -> BlockAddr {
        BlockAddr(addr.raw() >> self.shift)
    }

    /// First byte address of a block (inverse of [`Self::block_of`] up to
    /// the offset within the block).
    pub fn base_of(self, block: BlockAddr) -> Addr {
        Addr::new(block.raw() << self.shift)
    }
}

impl Default for BlockMap {
    fn default() -> Self {
        BlockMap::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_block_is_16_bytes() {
        assert_eq!(BlockMap::paper().block_bytes(), 16);
        assert_eq!(BlockMap::default(), BlockMap::paper());
    }

    #[test]
    fn rejects_bad_sizes() {
        assert_eq!(BlockMap::new(0), Err(InvalidBlockSize(0)));
        assert_eq!(BlockMap::new(24), Err(InvalidBlockSize(24)));
        assert!(BlockMap::new(64).is_ok());
    }

    #[test]
    fn block_boundaries() {
        let m = BlockMap::paper();
        assert_eq!(m.block_of(Addr::new(0)), BlockAddr::new(0));
        assert_eq!(m.block_of(Addr::new(15)), BlockAddr::new(0));
        assert_eq!(m.block_of(Addr::new(16)), BlockAddr::new(1));
        assert_eq!(m.block_of(Addr::new(31)), BlockAddr::new(1));
    }

    #[test]
    fn base_of_inverts() {
        let m = BlockMap::new(64).unwrap();
        let b = m.block_of(Addr::new(0x1234));
        let base = m.base_of(b);
        assert_eq!(base.raw() % 64, 0);
        assert_eq!(m.block_of(base), b);
    }

    #[test]
    fn error_display() {
        assert!(InvalidBlockSize(24).to_string().contains("24"));
    }
}
