//! Minimal vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand` it actually uses: a small, fast,
//! seedable generator ([`rngs::SmallRng`], xoshiro256++) plus the
//! [`Rng`]/[`SeedableRng`] trait surface (`gen`, `gen_bool`, `gen_range`).
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! upstream `rand`; everything in dirsim treats the stream as an opaque
//! deterministic function of the seed, so only statistical quality matters.

#![warn(missing_docs)]

/// A source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply: uniform enough for
                // simulation workloads, with no modulo bias at small spans.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a standard-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm upstream `rand` 0.8 uses for
    /// `SmallRng` on 64-bit targets. Fast, small state, excellent
    /// statistical quality for simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0u64..10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let x = rng.gen_range(5usize..8);
            assert!((5..8).contains(&x));
        }
        let y = rng.gen_range(0.0f64..2.0);
        assert!((0.0..2.0).contains(&y));
    }

    #[test]
    fn mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
