//! The protocol interface.
//!
//! A [`CoherenceProtocol`] is a state machine over (cache, block) pairs. The
//! simulation engine feeds it every *data* reference (instruction fetches
//! cause no coherence traffic in the paper's model) and receives a
//! [`crate::ops::RefOutcome`]: the Table 4 event classification,
//! the bus operations to price, and the data movements for the correctness
//! oracle.
//!
//! Cold misses — the first reference to a block in the trace — are detected
//! by the protocol itself (the block has no state yet) and contribute no bus
//! operations, implementing the paper's first-reference exclusion (§4).

use dirsim_mem::{BlockAddr, CacheId};

use crate::ops::RefOutcome;

/// Inspection snapshot of one block's protocol state (for tests and
/// invariant checks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockProbe {
    /// Caches currently holding a copy, in insertion order.
    pub holders: Vec<CacheId>,
    /// Whether the block is dirty (modified relative to memory) — or, for
    /// write-through protocols, exclusively held since its last write.
    pub dirty: bool,
}

impl BlockProbe {
    /// The dirty holder, if the block is dirty.
    ///
    /// By the single-writer invariant a dirty block has exactly one holder.
    pub fn dirty_holder(&self) -> Option<CacheId> {
        if self.dirty {
            self.holders.first().copied()
        } else {
            None
        }
    }
}

/// The write-propagation family a protocol belongs to.
///
/// The paper's Table 4 event classification depends only on the shared
/// state-change model, but *which* events a family can produce differs:
/// invalidation protocols split write hits by the dirty bit
/// (`wh-blk-cln`/`wh-blk-drty`), update protocols split them by sharing
/// (`wh-distrib`/`wh-local`). The model checker uses this to predict the
/// expected [`crate::event::EventKind`] from a pre-reference [`BlockProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolStyle {
    /// Copy-back with invalidation (the directory family, Illinois,
    /// Berkeley): dirty blocks live in one cache, writes invalidate sharers.
    #[default]
    CopyBackInvalidate,
    /// Write-through with invalidation (WTI): memory is always current;
    /// `dirty` tracks "written while exclusively held" for event purposes.
    WriteThrough,
    /// Update (Dragon, DirUpdate): writes refresh remote copies; nothing is
    /// ever invalidated and write hits classify as distrib/local.
    Update,
}

/// Canonical state of one block inside a [`StateSnapshot`].
///
/// `holders` preserves *insertion order* — pointer-limited schemes evict
/// the oldest/newest sharer and dirty-miss handling picks the oldest
/// holder, so order is behaviourally significant and two states differing
/// only in order must hash differently.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockState {
    /// The block this state describes.
    pub block: BlockAddr,
    /// Caches holding a copy, in insertion order.
    pub holders: Vec<CacheId>,
    /// The protocol's dirty/owned notion for this block (see
    /// [`BlockProbe::dirty`]).
    pub dirty: bool,
    /// Directory pointer knowledge (broadcast directory schemes only;
    /// empty where the holders list itself is the directory knowledge).
    pub pointers: Vec<CacheId>,
    /// Whether the directory's pointers overflowed into broadcast mode.
    pub broadcast_bit: bool,
    /// Protocol-specific extra state (Illinois exclusive bit, update-owner
    /// identity, coarse-vector code words), packed as opaque words.
    pub aux: Vec<u64>,
}

impl BlockState {
    /// A block state with only holders and a dirty bit (the common case
    /// for snoopy and full-map protocols).
    pub fn basic(block: BlockAddr, holders: Vec<CacheId>, dirty: bool) -> Self {
        BlockState {
            block,
            holders,
            dirty,
            pointers: Vec::new(),
            broadcast_bit: false,
            aux: Vec::new(),
        }
    }
}

/// Canonical, hashable snapshot of a protocol's complete state.
///
/// Blocks are sorted by address so two equal states always compare and
/// hash identically regardless of internal map iteration order. This is
/// what makes exhaustive reachability checking (`dirsim-verify`) possible:
/// the breadth-first search dedups explored states on this snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StateSnapshot {
    blocks: Vec<BlockState>,
}

impl StateSnapshot {
    /// Builds a snapshot, sorting the blocks into canonical order.
    pub fn from_blocks(mut blocks: Vec<BlockState>) -> Self {
        blocks.sort_by_key(|b| b.block);
        StateSnapshot { blocks }
    }

    /// The per-block states, ordered by block address.
    pub fn blocks(&self) -> &[BlockState] {
        &self.blocks
    }

    /// The state of one block, if the protocol tracks it.
    pub fn get(&self, block: BlockAddr) -> Option<&BlockState> {
        self.blocks.iter().find(|b| b.block == block)
    }
}

/// Whether renaming cache identities is a symmetry of the protocol.
///
/// Static analysis (`dirsim-analyze`) uses this to decide whether the
/// extracted transition table must commute with cache permutations: for a
/// [`Symmetric`](CacheSymmetry::Symmetric) protocol, relabelling the caches
/// of a reachable state yields another reachable state with the permuted
/// transitions. Protocols whose state encodes the *binary representation*
/// of cache indices (the §6 coarse-vector code words) are only symmetric
/// under a subgroup of permutations and opt out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheSymmetry {
    /// Every permutation of cache identities is a symmetry.
    #[default]
    Symmetric,
    /// Cache identities carry structure (index coding, region grouping);
    /// arbitrary permutations are not symmetries.
    Asymmetric,
}

/// Renames cache identities in one block's canonical state: cache `i`
/// becomes cache `perm[i]`. Maps the `holders` and `pointers` lists
/// elementwise and leaves `aux` untouched — the default behaviour of
/// [`CoherenceProtocol::permute_block_state`], exposed so overrides that
/// only need to fix up `aux` can delegate the rest.
pub fn permute_basic(state: &BlockState, perm: &[u32]) -> BlockState {
    let map = |c: &CacheId| CacheId::new(perm[c.index()]);
    BlockState {
        block: state.block,
        holders: state.holders.iter().map(map).collect(),
        dirty: state.dirty,
        pointers: state.pointers.iter().map(map).collect(),
        broadcast_bit: state.broadcast_bit,
        aux: state.aux.clone(),
    }
}

/// A cache-coherence protocol state machine.
///
/// Implementations: the `Dir_i{B,NB}` directory family
/// ([`crate::directory::DirectoryProtocol`]), the coarse-vector directory
/// ([`crate::directory::CoarseVectorProtocol`]), and the snoopy baselines
/// ([`crate::snoopy`]).
pub trait CoherenceProtocol {
    /// Human-readable scheme name in the paper's notation (`Dir1NB`,
    /// `Dir0B`, `WTI`, `Dragon`, …).
    fn name(&self) -> String;

    /// Number of caches in the system.
    fn cache_count(&self) -> u32;

    /// Processes one data reference by `cache` to `block`; `write` selects
    /// store vs load. Returns the classification and its consequences.
    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome;

    /// Capacity replacement: `cache` drops its copy of `block` (finite-cache
    /// simulation, the paper's §4 extension). Returns the bus operations the
    /// replacement causes — a write-back if the dropped copy was dirty,
    /// nothing for a clean drop — with no event classification (`event` is
    /// `None`). A no-op if the cache holds no copy.
    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome;

    /// Snapshot of a block's state, or `None` if the block has never been
    /// referenced.
    fn probe(&self, block: BlockAddr) -> Option<BlockProbe>;

    /// Number of distinct blocks with protocol state.
    fn tracked_blocks(&self) -> usize;

    /// The write-propagation family this protocol belongs to (drives
    /// expected-event prediction in the model checker).
    fn style(&self) -> ProtocolStyle {
        ProtocolStyle::CopyBackInvalidate
    }

    /// Canonical, hashable snapshot of the complete protocol state.
    ///
    /// Two protocols of the same scheme that will behave identically on
    /// every future reference must return equal snapshots; the exhaustive
    /// checker dedups its search frontier on this.
    fn snapshot(&self) -> StateSnapshot;

    /// Canonical state of one block, or `None` if untracked.
    ///
    /// Semantically `snapshot().get(block)`, but implementations override
    /// it with a single map lookup so the per-reference invariant audit
    /// stays O(1) instead of O(tracked blocks).
    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.snapshot().get(block).cloned()
    }

    /// Whether cache permutations are a symmetry of this machine (see
    /// [`CacheSymmetry`]). Defaults to symmetric, which holds for every
    /// protocol whose state names caches only through holder/pointer
    /// lists and owner identities.
    fn cache_symmetry(&self) -> CacheSymmetry {
        CacheSymmetry::Symmetric
    }

    /// Applies a renaming of cache identities to one block's canonical
    /// state: cache `i` becomes cache `perm[i]`.
    ///
    /// The default maps the `holders` and `pointers` lists elementwise
    /// (preserving insertion order, which renaming does not disturb) and
    /// leaves `aux` untouched — correct whenever `aux` carries no cache
    /// identity. Protocols that pack an owner index into `aux`
    /// ([`crate::directory::DirUpdate`], [`crate::snoopy::Dragon`])
    /// override this to remap it.
    ///
    /// `perm` must have one entry per cache (`perm.len() == cache_count`).
    fn permute_block_state(&self, state: &BlockState, perm: &[u32]) -> BlockState {
        permute_basic(state, perm)
    }

    /// Clones the protocol behind the trait object (state forking for the
    /// breadth-first reachability search).
    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_permute_renames_holders_and_pointers() {
        // Any protocol exercises the provided default; the directory
        // machine does not override it.
        let p = crate::directory::DirectoryProtocol::new(crate::directory::DirSpec::dir1_b(), 3);
        let state = BlockState {
            block: BlockAddr::new(0),
            holders: vec![CacheId::new(0), CacheId::new(2)],
            dirty: false,
            pointers: vec![CacheId::new(0)],
            broadcast_bit: true,
            aux: vec![7],
        };
        let permuted = p.permute_block_state(&state, &[2, 1, 0]);
        assert_eq!(permuted.holders, vec![CacheId::new(2), CacheId::new(0)]);
        assert_eq!(permuted.pointers, vec![CacheId::new(2)]);
        assert!(permuted.broadcast_bit);
        assert_eq!(permuted.aux, vec![7]);
        assert_eq!(p.cache_symmetry(), CacheSymmetry::Symmetric);
    }

    #[test]
    fn probe_dirty_holder() {
        let p = BlockProbe {
            holders: vec![CacheId::new(3)],
            dirty: true,
        };
        assert_eq!(p.dirty_holder(), Some(CacheId::new(3)));
        let q = BlockProbe {
            holders: vec![CacheId::new(3), CacheId::new(4)],
            dirty: false,
        };
        assert_eq!(q.dirty_holder(), None);
    }
}
