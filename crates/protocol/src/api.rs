//! The protocol interface.
//!
//! A [`CoherenceProtocol`] is a state machine over (cache, block) pairs. The
//! simulation engine feeds it every *data* reference (instruction fetches
//! cause no coherence traffic in the paper's model) and receives a
//! [`crate::ops::RefOutcome`]: the Table 4 event classification,
//! the bus operations to price, and the data movements for the correctness
//! oracle.
//!
//! Cold misses — the first reference to a block in the trace — are detected
//! by the protocol itself (the block has no state yet) and contribute no bus
//! operations, implementing the paper's first-reference exclusion (§4).

use dirsim_mem::{BlockAddr, CacheId};

use crate::ops::RefOutcome;

/// Inspection snapshot of one block's protocol state (for tests and
/// invariant checks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockProbe {
    /// Caches currently holding a copy, in insertion order.
    pub holders: Vec<CacheId>,
    /// Whether the block is dirty (modified relative to memory) — or, for
    /// write-through protocols, exclusively held since its last write.
    pub dirty: bool,
}

impl BlockProbe {
    /// The dirty holder, if the block is dirty.
    ///
    /// By the single-writer invariant a dirty block has exactly one holder.
    pub fn dirty_holder(&self) -> Option<CacheId> {
        if self.dirty {
            self.holders.first().copied()
        } else {
            None
        }
    }
}

/// A cache-coherence protocol state machine.
///
/// Implementations: the `Dir_i{B,NB}` directory family
/// ([`crate::directory::DirectoryProtocol`]), the coarse-vector directory
/// ([`crate::directory::CoarseVectorProtocol`]), and the snoopy baselines
/// ([`crate::snoopy`]).
pub trait CoherenceProtocol {
    /// Human-readable scheme name in the paper's notation (`Dir1NB`,
    /// `Dir0B`, `WTI`, `Dragon`, …).
    fn name(&self) -> String;

    /// Number of caches in the system.
    fn cache_count(&self) -> u32;

    /// Processes one data reference by `cache` to `block`; `write` selects
    /// store vs load. Returns the classification and its consequences.
    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome;

    /// Capacity replacement: `cache` drops its copy of `block` (finite-cache
    /// simulation, the paper's §4 extension). Returns the bus operations the
    /// replacement causes — a write-back if the dropped copy was dirty,
    /// nothing for a clean drop — with no event classification (`event` is
    /// `None`). A no-op if the cache holds no copy.
    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome;

    /// Snapshot of a block's state, or `None` if the block has never been
    /// referenced.
    fn probe(&self, block: BlockAddr) -> Option<BlockProbe>;

    /// Number of distinct blocks with protocol state.
    fn tracked_blocks(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_dirty_holder() {
        let p = BlockProbe {
            holders: vec![CacheId::new(3)],
            dirty: true,
        };
        assert_eq!(p.dirty_holder(), Some(CacheId::new(3)));
        let q = BlockProbe {
            holders: vec![CacheId::new(3), CacheId::new(4)],
            dirty: false,
        };
        assert_eq!(q.dirty_holder(), None);
    }
}
