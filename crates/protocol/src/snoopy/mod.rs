//! Snoopy-protocol baselines (§3): WTI at the simple/low-performance end,
//! Dragon at the complex/high-performance end, plus the Berkeley Ownership
//! derivation used in §5's comparison.

mod berkeley;
mod dragon;
mod illinois;
mod wti;

pub use berkeley::Berkeley;
pub use dragon::Dragon;
pub use illinois::Illinois;
pub use wti::Wti;
