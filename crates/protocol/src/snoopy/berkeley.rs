//! The Berkeley Ownership cost derivation (§5's aside).
//!
//! The paper estimates the Berkeley Ownership snoopy protocol from the
//! `Dir0B` event frequencies: both use the same state-change model, but a
//! snooping cache learns from its own block state whether an invalidation
//! is needed, so the directory-access cost drops to zero. (Berkeley's
//! owned-shared state also lets a cache supply a dirty block directly; the
//! paper notes this "does not impact our performance metric in the
//! pipelined bus".)
//!
//! [`Berkeley`] is therefore the `Dir0B` machine with unoverlapped
//! directory lookups stripped from the emitted bus operations — exactly the
//! paper's derivation, expressed structurally.

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{BlockProbe, BlockState, CoherenceProtocol, StateSnapshot};
use crate::directory::{DirSpec, DirectoryProtocol};
use crate::ops::RefOutcome;

/// Berkeley Ownership, derived from `Dir0B` with free directory lookups.
///
/// # Examples
///
/// ```
/// use dirsim_protocol::snoopy::Berkeley;
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_protocol::ops::BusOp;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut berk = Berkeley::new(4);
/// let b = BlockAddr::new(0);
/// berk.on_data_ref(CacheId::new(0), b, false);
/// let w = berk.on_data_ref(CacheId::new(0), b, true);
/// // The cache's own state says whether to invalidate — no DirLookup op.
/// assert!(!w.ops.contains(&BusOp::DirLookup));
/// ```
#[derive(Debug, Clone)]
pub struct Berkeley {
    inner: DirectoryProtocol,
}

impl Berkeley {
    /// Creates a Berkeley system with `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        Berkeley {
            inner: DirectoryProtocol::new(DirSpec::dir0_b(), caches).with_free_directory(),
        }
    }
}

impl CoherenceProtocol for Berkeley {
    fn name(&self) -> String {
        "Berkeley".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.inner.cache_count()
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        self.inner.on_data_ref(cache, block, write)
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        self.inner.evict(cache, block)
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.inner.probe(block)
    }

    fn tracked_blocks(&self) -> usize {
        self.inner.tracked_blocks()
    }

    fn snapshot(&self) -> StateSnapshot {
        self.inner.snapshot()
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.inner.block_state(block)
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ops::BusOp;

    const B: BlockAddr = BlockAddr::new(3);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn never_emits_dir_lookup() {
        let mut p = Berkeley::new(4);
        let mut x: u64 = 3;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let out = p.on_data_ref(
                c((x >> 33) as u32 % 4),
                BlockAddr::new((x >> 13) % 8),
                x % 3 == 0,
            );
            assert!(!out.ops.contains(&BusOp::DirLookup));
        }
    }

    #[test]
    fn events_match_dir0b() {
        let mut berk = Berkeley::new(4);
        let mut dir0b = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        let mut x: u64 = 13;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cache = c((x >> 33) as u32 % 4);
            let block = BlockAddr::new((x >> 13) % 8);
            let write = x % 3 == 0;
            let a = berk.on_data_ref(cache, block, write);
            let b = dir0b.on_data_ref(cache, block, write);
            assert_eq!(a.kind(), b.kind());
            // Ops are identical except DirLookup is stripped.
            let b_ops: Vec<BusOp> = b
                .ops
                .iter()
                .copied()
                .filter(|&o| o != BusOp::DirLookup)
                .collect();
            assert_eq!(a.ops, b_ops);
        }
    }

    #[test]
    fn exclusive_clean_write_hit_is_totally_free() {
        let mut p = Berkeley::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert!(out.ops.is_empty(), "own state check needs no bus access");
    }

    #[test]
    fn name_is_berkeley() {
        assert_eq!(Berkeley::new(2).name(), "Berkeley");
    }
}
