//! The Dragon update protocol (§3, Xerox Dragon).
//!
//! Dragon maintains consistency by *updating* stale cached data rather than
//! invalidating it. A dedicated "shared" bus line tells a writer whether any
//! other cache holds the block: if so, the write is broadcast as a one-word
//! update (`wh-distrib`); if not, it is purely local (`wh-local`). Because
//! nothing is ever invalidated, an infinite cache misses only on its own
//! first access to a block — the paper calls Dragon's miss rate the *native*
//! miss rate of the trace.
//!
//! Memory becomes stale on updates; the last writer is the *owner* and
//! supplies the block on later misses (`rm-blk-drty`).

use dirsim_mem::FxHashMap;

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{
    permute_basic, BlockProbe, BlockState, CoherenceProtocol, ProtocolStyle, StateSnapshot,
};
use crate::event::EventKind;
use crate::ops::{BusOp, DataMovement, RefOutcome};
use crate::sharer_set::SharerSet;

#[derive(Debug, Clone, Default)]
struct Entry {
    holders: SharerSet,
    /// Cache responsible for supplying the block while memory is stale.
    owner: Option<CacheId>,
}

/// The Dragon update snoopy protocol (see module docs).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::snoopy::Dragon;
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_protocol::event::EventKind;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut dragon = Dragon::new(4);
/// let b = BlockAddr::new(0);
/// dragon.on_data_ref(CacheId::new(0), b, false);
/// dragon.on_data_ref(CacheId::new(1), b, false);
/// // A write while the block is shared broadcasts an update:
/// let w = dragon.on_data_ref(CacheId::new(0), b, true);
/// assert_eq!(w.kind(), EventKind::WhDistrib);
/// ```
#[derive(Debug, Clone)]
pub struct Dragon {
    caches: u32,
    blocks: FxHashMap<BlockAddr, Entry>,
}

impl Dragon {
    /// Creates a Dragon system with `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        assert!(caches > 0, "a coherence system needs at least one cache");
        Dragon {
            caches,
            blocks: FxHashMap::default(),
        }
    }

    /// Canonical [`BlockState`] of one entry. The owner identity rides in
    /// `aux[0]` as index + 1 (0 = memory current): which cache supplies
    /// and writes back matters, not just that one exists.
    fn entry_state(block: BlockAddr, e: &Entry) -> BlockState {
        BlockState {
            block,
            holders: e.holders.iter().collect(),
            dirty: e.owner.is_some(),
            pointers: Vec::new(),
            broadcast_bit: false,
            aux: vec![e.owner.map_or(0, |c| c.index() as u64 + 1)],
        }
    }
}

impl CoherenceProtocol for Dragon {
    fn name(&self) -> String {
        "Dragon".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let Some(entry) = self.blocks.get_mut(&block) else {
            let mut entry = Entry::default();
            entry.holders.insert(cache);
            entry.owner = write.then_some(cache);
            self.blocks.insert(block, entry);
            let kind = if write {
                EventKind::WmFirstRef
            } else {
                EventKind::RmFirstRef
            };
            let mut out = RefOutcome::event(kind);
            out.movements.push(DataMovement::FillFromMemory { cache });
            if write {
                out.movements.push(DataMovement::CacheWrite { cache });
            }
            return out;
        };

        let holds = entry.holders.contains(cache);
        match (write, holds) {
            (false, true) => RefOutcome::event(EventKind::RdHit),
            (false, false) => {
                let mut out;
                if let Some(owner) = entry.owner {
                    // Memory is stale; the owning cache supplies the block.
                    out = RefOutcome::event(EventKind::RmBlkDrty);
                    out.ops.push(BusOp::CacheSupply);
                    out.movements.push(DataMovement::FillFromCache {
                        cache,
                        supplier: owner,
                    });
                } else {
                    out = RefOutcome::event(EventKind::RmBlkCln);
                    out.ops.push(BusOp::MemRead);
                    out.movements.push(DataMovement::FillFromMemory { cache });
                }
                entry.holders.insert(cache);
                out
            }
            (true, holds) => {
                if !holds {
                    // Write miss: fetch (from owner or memory), then the
                    // write itself updates the other copies.
                    let mut out;
                    if let Some(owner) = entry.owner {
                        out = RefOutcome::event(EventKind::WmBlkDrty);
                        out.ops.push(BusOp::CacheSupply);
                        out.movements.push(DataMovement::FillFromCache {
                            cache,
                            supplier: owner,
                        });
                    } else {
                        out = RefOutcome::event(EventKind::WmBlkCln);
                        out.ops.push(BusOp::MemRead);
                        out.movements.push(DataMovement::FillFromMemory { cache });
                    }
                    entry.holders.insert(cache);
                    out.ops.push(BusOp::WriteUpdate);
                    out.movements.push(DataMovement::WriteUpdate { cache });
                    entry.owner = Some(cache);
                    return out;
                }
                // Write hit: the shared line says whether anyone else holds
                // the block.
                let shared = entry.holders.count_others(cache) > 0;
                if shared {
                    let mut out = RefOutcome::event(EventKind::WhDistrib);
                    out.ops.push(BusOp::WriteUpdate);
                    out.movements.push(DataMovement::WriteUpdate { cache });
                    entry.owner = Some(cache);
                    out
                } else {
                    let mut out = RefOutcome::event(EventKind::WhLocal);
                    out.movements.push(DataMovement::CacheWrite { cache });
                    entry.owner = Some(cache);
                    out
                }
            }
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        let Some(entry) = self.blocks.get_mut(&block) else {
            return out;
        };
        if !entry.holders.contains(cache) {
            return out;
        }
        if entry.owner == Some(cache) {
            // The owner is responsible for memory: flush on displacement.
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache });
            entry.owner = None;
        }
        entry.holders.remove(cache);
        out.movements.push(DataMovement::Invalidate { cache });
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.iter().collect(),
            dirty: e.owner.is_some(),
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn style(&self) -> ProtocolStyle {
        ProtocolStyle::Update
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| Self::entry_state(block, e))
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks.get(&block).map(|e| Self::entry_state(block, e))
    }

    fn permute_block_state(&self, state: &BlockState, perm: &[u32]) -> BlockState {
        let mut permuted = permute_basic(state, perm);
        // `aux[0]` carries the owner identity as index + 1 (0 = no owner).
        if let Some(a) = permuted.aux.first_mut() {
            if *a > 0 {
                *a = perm[(*a - 1) as usize] as u64 + 1;
            }
        }
        permuted
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr::new(2);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn never_invalidates_anything() {
        let mut p = Dragon::new(4);
        let mut x: u64 = 77;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let out = p.on_data_ref(
                c((x >> 33) as u32 % 4),
                BlockAddr::new((x >> 13) % 8),
                x % 3 == 0,
            );
            assert!(out
                .movements
                .iter()
                .all(|m| !matches!(m, DataMovement::Invalidate { .. })));
            assert_eq!(out.clean_write_fanout, None);
        }
    }

    #[test]
    fn misses_only_on_first_access_per_cache() {
        let mut p = Dragon::new(4);
        // Each cache misses exactly once per block, forever after hits.
        for round in 0..3 {
            for i in 0..4 {
                let out = p.on_data_ref(c(i), B, false);
                if round == 0 {
                    assert_ne!(out.kind(), EventKind::RdHit);
                } else {
                    assert_eq!(out.kind(), EventKind::RdHit);
                }
            }
        }
    }

    #[test]
    fn shared_write_hit_is_distributed() {
        let mut p = Dragon::new(4);
        p.on_data_ref(c(0), B, false);
        p.on_data_ref(c(1), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhDistrib);
        assert_eq!(out.ops, vec![BusOp::WriteUpdate]);
        // The other copy is refreshed, so its read remains a hit.
        let peek = p.on_data_ref(c(1), B, false);
        assert_eq!(peek.kind(), EventKind::RdHit);
    }

    #[test]
    fn exclusive_write_hit_is_local_and_free() {
        let mut p = Dragon::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhLocal);
        assert!(out.ops.is_empty());
    }

    #[test]
    fn owner_supplies_after_update() {
        let mut p = Dragon::new(4);
        p.on_data_ref(c(0), B, true); // cold write; memory stale
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.kind(), EventKind::RmBlkDrty);
        assert_eq!(out.ops, vec![BusOp::CacheSupply]);
        assert!(matches!(
            out.movements[0],
            DataMovement::FillFromCache { supplier, .. } if supplier == c(0)
        ));
    }

    #[test]
    fn clean_miss_comes_from_memory() {
        let mut p = Dragon::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.kind(), EventKind::RmBlkCln);
        assert_eq!(out.ops, vec![BusOp::MemRead]);
    }

    #[test]
    fn write_miss_fetches_and_updates() {
        let mut p = Dragon::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(1), B, true);
        assert_eq!(out.kind(), EventKind::WmBlkCln);
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::WriteUpdate]);
        // Both caches still hold the block.
        assert_eq!(p.probe(B).unwrap().holders.len(), 2);
    }

    #[test]
    fn name_is_dragon() {
        assert_eq!(Dragon::new(2).name(), "Dragon");
    }
}
