//! Write-Through-With-Invalidate (WTI), §3.
//!
//! The simplest snoopy protocol: every write is transmitted to main memory;
//! caches snooping the bus invalidate their copies of the written block.
//! Memory is therefore never stale, and misses are always serviced by
//! memory.
//!
//! WTI shares the `Dir0B` *state-change model* — multiple cached copies of
//! clean blocks, writes leave exactly one copy — so its event frequencies
//! are identical to `Dir0B`'s (the paper's §5 observation; a cross-protocol
//! test asserts this). The `dirty` flag in the state tracks "written while
//! exclusively held", which drives the same `blk-cln`/`blk-drty` event
//! split even though memory always holds current data.

use dirsim_mem::FxHashMap;

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{BlockProbe, BlockState, CoherenceProtocol, ProtocolStyle, StateSnapshot};
use crate::event::EventKind;
use crate::ops::{BusOp, DataMovement, RefOutcome};
use crate::sharer_set::SharerSet;

#[derive(Debug, Clone, Default)]
struct Entry {
    holders: SharerSet,
    /// "Written while exclusive": mirrors the copy-back model's dirty bit
    /// for event-classification purposes only; memory is always current.
    written_exclusive: bool,
}

/// The WTI snoopy protocol (see module docs).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::snoopy::Wti;
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_protocol::ops::BusOp;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut wti = Wti::new(4);
/// let b = BlockAddr::new(0);
/// wti.on_data_ref(CacheId::new(0), b, false); // cold read
/// let w = wti.on_data_ref(CacheId::new(0), b, true);
/// assert!(w.ops.contains(&BusOp::WriteThrough)); // every write hits the bus
/// ```
#[derive(Debug, Clone)]
pub struct Wti {
    caches: u32,
    blocks: FxHashMap<BlockAddr, Entry>,
}

impl Wti {
    /// Creates a WTI system with `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        assert!(caches > 0, "a coherence system needs at least one cache");
        Wti {
            caches,
            blocks: FxHashMap::default(),
        }
    }
}

impl CoherenceProtocol for Wti {
    fn name(&self) -> String {
        "WTI".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let Some(entry) = self.blocks.get_mut(&block) else {
            let mut entry = Entry::default();
            entry.holders.insert(cache);
            entry.written_exclusive = write;
            self.blocks.insert(block, entry);
            let kind = if write {
                EventKind::WmFirstRef
            } else {
                EventKind::RmFirstRef
            };
            let mut out = RefOutcome::event(kind);
            out.movements.push(DataMovement::FillFromMemory { cache });
            if write {
                // The cold fetch is excluded from cost (§4), but the
                // write-through itself is a write cost, not a miss cost.
                out.ops.push(BusOp::WriteThrough);
                out.movements.push(DataMovement::WriteThrough { cache });
            }
            return out;
        };

        let holds = entry.holders.contains(cache);
        match (write, holds) {
            (false, true) => RefOutcome::event(EventKind::RdHit),
            (false, false) => {
                // Memory is always current under write-through; the event
                // split mirrors the shared state-change model.
                let kind = if entry.written_exclusive {
                    EventKind::RmBlkDrty
                } else {
                    EventKind::RmBlkCln
                };
                let mut out = RefOutcome::event(kind);
                out.ops.push(BusOp::MemRead);
                out.movements.push(DataMovement::FillFromMemory { cache });
                entry.holders.insert(cache);
                entry.written_exclusive = false;
                out
            }
            (true, true) => {
                if entry.written_exclusive {
                    // Sole writer keeps writing: still a bus write-through.
                    let mut out = RefOutcome::event(EventKind::WhBlkDrty);
                    out.ops.push(BusOp::WriteThrough);
                    out.movements.push(DataMovement::WriteThrough { cache });
                    return out;
                }
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(EventKind::WhBlkCln);
                out.clean_write_fanout = Some(remote.len() as u32);
                // The write-through broadcast carries the invalidation for
                // free: snooping caches drop their copies as it passes.
                out.ops.push(BusOp::WriteThrough);
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::WriteThrough { cache });
                entry.holders.retain_only(cache);
                entry.written_exclusive = true;
                out
            }
            (true, false) => {
                let kind = if entry.written_exclusive {
                    EventKind::WmBlkDrty
                } else {
                    EventKind::WmBlkCln
                };
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(kind);
                if kind == EventKind::WmBlkCln {
                    out.clean_write_fanout = Some(remote.len() as u32);
                }
                // Write-allocate: fetch the block, then write through.
                out.ops.push(BusOp::MemRead);
                out.ops.push(BusOp::WriteThrough);
                out.movements.push(DataMovement::FillFromMemory { cache });
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::WriteThrough { cache });
                entry.holders.clear();
                entry.holders.insert(cache);
                entry.written_exclusive = true;
                out
            }
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        let Some(entry) = self.blocks.get_mut(&block) else {
            return out;
        };
        if !entry.holders.contains(cache) {
            return out;
        }
        // Memory is always current under write-through: drops are silent.
        entry.holders.remove(cache);
        if entry.holders.is_empty() {
            entry.written_exclusive = false;
        }
        out.movements.push(DataMovement::Invalidate { cache });
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.iter().collect(),
            dirty: e.written_exclusive,
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn style(&self) -> ProtocolStyle {
        ProtocolStyle::WriteThrough
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| {
                    BlockState::basic(block, e.holders.iter().collect(), e.written_exclusive)
                })
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks
            .get(&block)
            .map(|e| BlockState::basic(block, e.holders.iter().collect(), e.written_exclusive))
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr::new(1);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn every_write_goes_to_the_bus() {
        let mut p = Wti::new(4);
        p.on_data_ref(c(0), B, false);
        for _ in 0..5 {
            let out = p.on_data_ref(c(0), B, true);
            assert!(out.ops.contains(&BusOp::WriteThrough));
        }
    }

    #[test]
    fn read_hits_are_free() {
        let mut p = Wti::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(0), B, false);
        assert_eq!(out.kind(), EventKind::RdHit);
        assert!(out.ops.is_empty());
    }

    #[test]
    fn writes_invalidate_other_copies() {
        let mut p = Wti::new(4);
        p.on_data_ref(c(0), B, false);
        p.on_data_ref(c(1), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(out.clean_write_fanout, Some(1));
        // Invalidation is free — no Invalidate op, just the write-through.
        assert_eq!(out.ops, vec![BusOp::WriteThrough]);
        assert_eq!(p.probe(B).unwrap().holders, vec![c(0)]);
    }

    #[test]
    fn misses_always_served_by_memory() {
        let mut p = Wti::new(4);
        p.on_data_ref(c(0), B, true); // cold write
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.kind(), EventKind::RmBlkDrty);
        assert_eq!(out.ops, vec![BusOp::MemRead]);
        assert!(matches!(
            out.movements[0],
            DataMovement::FillFromMemory { .. }
        ));
    }

    #[test]
    fn write_miss_allocates_and_writes_through() {
        let mut p = Wti::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(1), B, true);
        assert_eq!(out.kind(), EventKind::WmBlkCln);
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::WriteThrough]);
    }

    #[test]
    fn cold_write_charges_only_the_write_through() {
        let mut p = Wti::new(4);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WmFirstRef);
        assert_eq!(out.ops, vec![BusOp::WriteThrough]);
    }

    #[test]
    fn never_emits_invalidate_or_writeback_ops() {
        let mut p = Wti::new(4);
        let mut x: u64 = 5;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let out = p.on_data_ref(
                c((x >> 33) as u32 % 4),
                BlockAddr::new((x >> 13) % 8),
                x % 3 == 0,
            );
            for op in &out.ops {
                assert!(
                    matches!(op, BusOp::MemRead | BusOp::WriteThrough),
                    "WTI emitted {op}"
                );
            }
        }
    }

    #[test]
    fn name_and_counts() {
        let p = Wti::new(4);
        assert_eq!(p.name(), "WTI");
        assert_eq!(p.cache_count(), 4);
        assert_eq!(p.tracked_blocks(), 0);
    }
}
