//! The Illinois protocol (Papamarcos & Patel — the paper's reference [5]),
//! known today as MESI.
//!
//! A copy-back invalidation snoopy protocol with two refinements over the
//! basic model: an **exclusive-clean** state lets a sole holder write
//! without any bus traffic (like Berkeley's ownership check), and misses
//! are supplied **cache-to-cache** whenever any cache holds the block,
//! with a dirty supplier writing memory back in the same transaction.
//!
//! Its state-change model is the same multiple-clean/single-dirty policy
//! as `Dir0B` and WTI, so — per the paper's §5 observation — its event
//! frequencies are identical to theirs; only the bus operations differ.

use dirsim_mem::FxHashMap;

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{BlockProbe, BlockState, CoherenceProtocol, StateSnapshot};
use crate::event::EventKind;
use crate::ops::{BusOp, DataMovement, RefOutcome};
use crate::sharer_set::SharerSet;

#[derive(Debug, Clone, Default)]
struct Entry {
    holders: SharerSet,
    dirty: bool,
    /// Sole holder has never shared since its fill (E or M state).
    exclusive: bool,
}

/// The Illinois (MESI) snoopy protocol (see module docs).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::snoopy::Illinois;
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut mesi = Illinois::new(4);
/// let b = BlockAddr::new(0);
/// mesi.on_data_ref(CacheId::new(0), b, false); // E state
/// let w = mesi.on_data_ref(CacheId::new(0), b, true);
/// assert!(w.ops.is_empty(), "E → M silently");
/// ```
#[derive(Debug, Clone)]
pub struct Illinois {
    caches: u32,
    blocks: FxHashMap<BlockAddr, Entry>,
}

impl Illinois {
    /// Creates an Illinois system with `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        assert!(caches > 0, "a coherence system needs at least one cache");
        Illinois {
            caches,
            blocks: FxHashMap::default(),
        }
    }

    /// Canonical [`BlockState`] of one entry. The E/M bit rides in
    /// `aux[0]`: an exclusive clean copy upgrades silently where a shared
    /// one must broadcast.
    fn entry_state(block: BlockAddr, e: &Entry) -> BlockState {
        BlockState {
            block,
            holders: e.holders.iter().collect(),
            dirty: e.dirty,
            pointers: Vec::new(),
            broadcast_bit: false,
            aux: vec![u64::from(e.exclusive)],
        }
    }
}

impl CoherenceProtocol for Illinois {
    fn name(&self) -> String {
        "Illinois".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let Some(entry) = self.blocks.get_mut(&block) else {
            // Cold fill: the snoop result says nobody has it → E (or M).
            let mut entry = Entry::default();
            entry.holders.insert(cache);
            entry.dirty = write;
            entry.exclusive = true;
            self.blocks.insert(block, entry);
            let kind = if write {
                EventKind::WmFirstRef
            } else {
                EventKind::RmFirstRef
            };
            let mut out = RefOutcome::event(kind);
            out.movements.push(DataMovement::FillFromMemory { cache });
            if write {
                out.movements.push(DataMovement::CacheWrite { cache });
            }
            return out;
        };

        let holds = entry.holders.contains(cache);
        match (write, holds) {
            (false, true) => RefOutcome::event(EventKind::RdHit),
            (false, false) => {
                let kind = if entry.dirty {
                    EventKind::RmBlkDrty
                } else {
                    EventKind::RmBlkCln
                };
                let mut out = RefOutcome::event(kind);
                if let Some(supplier) = entry.holders.oldest() {
                    // Cache-to-cache supply (Illinois's hallmark); a dirty
                    // supplier also updates memory during the transfer.
                    out.ops.push(if entry.dirty {
                        BusOp::WriteBack
                    } else {
                        BusOp::CacheSupply
                    });
                    if entry.dirty {
                        out.movements
                            .push(DataMovement::WriteBack { cache: supplier });
                    }
                    out.movements
                        .push(DataMovement::FillFromCache { cache, supplier });
                } else {
                    out.ops.push(BusOp::MemRead);
                    out.movements.push(DataMovement::FillFromMemory { cache });
                }
                entry.dirty = false;
                entry.exclusive = false;
                entry.holders.insert(cache);
                out
            }
            (true, true) => {
                if entry.dirty {
                    let mut out = RefOutcome::event(EventKind::WhBlkDrty);
                    out.movements.push(DataMovement::CacheWrite { cache });
                    return out;
                }
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(EventKind::WhBlkCln);
                out.clean_write_fanout = Some(remote.len() as u32);
                if entry.exclusive {
                    // E → M: the defining Illinois transition, bus-free.
                    out.movements.push(DataMovement::CacheWrite { cache });
                    entry.dirty = true;
                    return out;
                }
                // S → M: broadcast an invalidation on the snooping bus.
                out.ops.push(BusOp::BroadcastInvalidate);
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.retain_only(cache);
                entry.dirty = true;
                entry.exclusive = true;
                out
            }
            (true, false) => {
                let kind = if entry.dirty {
                    EventKind::WmBlkDrty
                } else {
                    EventKind::WmBlkCln
                };
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(kind);
                if kind == EventKind::WmBlkCln {
                    out.clean_write_fanout = Some(remote.len() as u32);
                }
                if let Some(supplier) = entry.holders.oldest() {
                    out.ops.push(if entry.dirty {
                        BusOp::WriteBack
                    } else {
                        BusOp::CacheSupply
                    });
                    if entry.dirty {
                        out.movements
                            .push(DataMovement::WriteBack { cache: supplier });
                    }
                    out.movements
                        .push(DataMovement::FillFromCache { cache, supplier });
                } else {
                    out.ops.push(BusOp::MemRead);
                    out.movements.push(DataMovement::FillFromMemory { cache });
                }
                // The read-with-intent-to-modify invalidates as it snoops.
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.clear();
                entry.holders.insert(cache);
                entry.dirty = true;
                entry.exclusive = true;
                out
            }
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        let Some(entry) = self.blocks.get_mut(&block) else {
            return out;
        };
        if !entry.holders.contains(cache) {
            return out;
        }
        if entry.dirty {
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache });
            entry.dirty = false;
        }
        entry.holders.remove(cache);
        entry.exclusive = false;
        out.movements.push(DataMovement::Invalidate { cache });
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.iter().collect(),
            dirty: e.dirty,
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| Self::entry_state(block, e))
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks.get(&block).map(|e| Self::entry_state(block, e))
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{DirSpec, DirectoryProtocol};

    const B: BlockAddr = BlockAddr::new(5);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn exclusive_to_modified_is_silent() {
        let mut p = Illinois::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert!(out.ops.is_empty());
    }

    #[test]
    fn shared_write_broadcasts() {
        let mut p = Illinois::new(4);
        p.on_data_ref(c(0), B, false);
        p.on_data_ref(c(1), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.ops, vec![BusOp::BroadcastInvalidate]);
        // No directory lookup — the cache's own S state triggered it.
        assert!(!out.ops.contains(&BusOp::DirLookup));
    }

    #[test]
    fn clean_misses_are_cache_supplied() {
        let mut p = Illinois::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.kind(), EventKind::RmBlkCln);
        assert_eq!(out.ops, vec![BusOp::CacheSupply]);
    }

    #[test]
    fn dirty_misses_write_back_and_supply() {
        let mut p = Illinois::new(4);
        p.on_data_ref(c(0), B, true);
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.kind(), EventKind::RmBlkDrty);
        assert_eq!(out.ops, vec![BusOp::WriteBack]);
        // Supplier keeps a clean copy, requester joins.
        assert_eq!(p.probe(B).unwrap().holders.len(), 2);
        assert!(!p.probe(B).unwrap().dirty);
    }

    #[test]
    fn events_match_dir0b() {
        // Same state-change model (the paper's §5 point about [5]/[7]).
        let mut mesi = Illinois::new(4);
        let mut dir0b = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        let mut x: u64 = 23;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cache = c((x >> 33) as u32 % 4);
            let block = BlockAddr::new((x >> 13) % 8);
            let write = x % 3 == 0;
            let a = mesi.on_data_ref(cache, block, write);
            let b = dir0b.on_data_ref(cache, block, write);
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.clean_write_fanout, b.clean_write_fanout);
        }
    }

    #[test]
    fn never_uses_the_directory() {
        let mut p = Illinois::new(4);
        let mut x: u64 = 29;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let out = p.on_data_ref(
                c((x >> 33) as u32 % 4),
                BlockAddr::new((x >> 13) % 6),
                x % 3 == 0,
            );
            assert!(!out.ops.contains(&BusOp::DirLookup));
            assert!(!out.ops.contains(&BusOp::DirUpdate));
        }
    }

    #[test]
    fn eviction_restores_memory() {
        let mut p = Illinois::new(4);
        p.on_data_ref(c(0), B, true);
        let out = p.evict(c(0), B);
        assert_eq!(out.ops, vec![BusOp::WriteBack]);
        // A later miss is served by memory again.
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.ops, vec![BusOp::MemRead]);
    }

    #[test]
    fn name_is_illinois() {
        assert_eq!(Illinois::new(2).name(), "Illinois");
    }
}
