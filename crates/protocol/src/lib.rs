//! # dirsim-protocol
//!
//! Cache-coherence protocol state machines for the directory-scheme
//! evaluation: the generic `Dir_i{B,NB}` directory family (the paper's
//! classification, §2), the §6 coarse-vector limited-broadcast directory,
//! and the snoopy baselines (WTI, Dragon, Berkeley).
//!
//! Every protocol implements [`CoherenceProtocol`]: it consumes data
//! references and produces [`RefOutcome`]s carrying
//!
//! 1. the Table 4 *event* classification ([`event::EventKind`]),
//! 2. the *bus operations* to be priced by `dirsim-cost`
//!    ([`ops::BusOp`]), and
//! 3. the semantic *data movements* checked by the `dirsim-mem` oracle.
//!
//! ```
//! use dirsim_protocol::{Scheme, CoherenceProtocol};
//! use dirsim_mem::{BlockAddr, CacheId};
//!
//! // The paper's four headline schemes for a 4-cache system:
//! for scheme in Scheme::paper_lineup() {
//!     let mut protocol = scheme.build(4);
//!     protocol.on_data_ref(CacheId::new(0), BlockAddr::new(0), false);
//!     assert_eq!(protocol.tracked_blocks(), 1);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod directory;
pub mod event;
pub mod ops;
pub mod sharer_set;
pub mod snoopy;

pub use api::{
    BlockProbe, BlockState, CacheSymmetry, CoherenceProtocol, ProtocolStyle, StateSnapshot,
};
pub use directory::{CoarseVectorProtocol, DirSpec, DirUpdate, DirectoryProtocol, Tang, YenFu};
pub use event::{EventCounts, EventKind};
pub use ops::{BusOp, DataMovement, OpCounts, RefOutcome};
pub use sharer_set::SharerSet;
pub use snoopy::{Berkeley, Dragon, Illinois, Wti};

/// A buildable coherence scheme: one point in the evaluated design space.
///
/// This is the factory the experiment harness uses to instantiate protocols
/// by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// A `Dir_i{B,NB}` directory scheme.
    Directory(DirSpec),
    /// The §6 coarse-vector limited-broadcast directory.
    CoarseVector,
    /// Tang's duplicate-tag organisation of the full-map directory.
    Tang,
    /// The Yen & Fu single-bit refinement of the full-map directory.
    YenFu,
    /// Directory-driven update protocol (Dragon's model, directed updates).
    DirUpdate,
    /// Write-Through-With-Invalidate snoopy protocol.
    Wti,
    /// The Illinois (MESI) snoopy protocol (the paper's reference \[5\]).
    Illinois,
    /// Dragon update snoopy protocol.
    Dragon,
    /// Berkeley Ownership (Dir0B cost model with free directory).
    Berkeley,
}

impl Scheme {
    /// The four schemes of the paper's headline evaluation (§3), in the
    /// order of Table 4: `Dir1NB`, `WTI`, `Dir0B`, `Dragon`.
    pub fn paper_lineup() -> Vec<Scheme> {
        vec![
            Scheme::Directory(DirSpec::dir1_nb()),
            Scheme::Wti,
            Scheme::Directory(DirSpec::dir0_b()),
            Scheme::Dragon,
        ]
    }

    /// `Dir0B`: no pointers, broadcast on every write to shared data.
    pub fn dir0_b() -> Scheme {
        Scheme::Directory(DirSpec::dir0_b())
    }

    /// `Dir1B`: one pointer, broadcast on overflow.
    pub fn dir1_b() -> Scheme {
        Scheme::Directory(DirSpec::dir1_b())
    }

    /// `DiriB`: `i` pointers, broadcast on overflow (`i = 0` is
    /// [`Scheme::dir0_b`]).
    pub fn dir_i_b(i: u32) -> Scheme {
        Scheme::Directory(DirSpec::dir_i_b(i))
    }

    /// `Dir1NB`: one pointer, evict-on-overflow, no broadcast.
    pub fn dir1_nb() -> Scheme {
        Scheme::Directory(DirSpec::dir1_nb())
    }

    /// `DirnNB`: the full-map directory.
    pub fn dir_n_nb() -> Scheme {
        Scheme::Directory(DirSpec::dir_n_nb())
    }

    /// Instantiates the protocol for a system of `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn build(self, caches: u32) -> Box<dyn CoherenceProtocol> {
        match self {
            Scheme::Directory(spec) => Box::new(DirectoryProtocol::new(spec, caches)),
            Scheme::CoarseVector => Box::new(CoarseVectorProtocol::new(caches)),
            Scheme::Tang => Box::new(Tang::new(caches)),
            Scheme::YenFu => Box::new(YenFu::new(caches)),
            Scheme::DirUpdate => Box::new(DirUpdate::new(caches)),
            Scheme::Wti => Box::new(Wti::new(caches)),
            Scheme::Illinois => Box::new(Illinois::new(caches)),
            Scheme::Dragon => Box::new(Dragon::new(caches)),
            Scheme::Berkeley => Box::new(Berkeley::new(caches)),
        }
    }

    /// The directory specification, for the `Dir_i{B,NB}` family; `None`
    /// for every other organisation. Static analysis uses this to know
    /// which pointer-capacity and broadcast-discipline lints apply.
    pub fn dir_spec(self) -> Option<DirSpec> {
        match self {
            Scheme::Directory(spec) => Some(spec),
            _ => None,
        }
    }

    /// Whether the scheme is a snoopy protocol, i.e. depends on every
    /// cache observing every coherence transaction. Snoopy schemes need a
    /// broadcast medium; directory schemes send directed messages and run
    /// over arbitrary networks (the paper's central argument).
    pub fn is_snoopy(self) -> bool {
        matches!(
            self,
            Scheme::Wti | Scheme::Illinois | Scheme::Dragon | Scheme::Berkeley
        )
    }

    /// The scheme's display name.
    pub fn name(self) -> String {
        match self {
            Scheme::Directory(spec) => spec.to_string(),
            Scheme::CoarseVector => "CoarseVector".to_string(),
            Scheme::Tang => "Tang".to_string(),
            Scheme::YenFu => "YenFu".to_string(),
            Scheme::DirUpdate => "DirUpd".to_string(),
            Scheme::Wti => "WTI".to_string(),
            Scheme::Illinois => "Illinois".to_string(),
            Scheme::Dragon => "Dragon".to_string(),
            Scheme::Berkeley => "Berkeley".to_string(),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Error parsing a scheme name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError {
    input: String,
}

impl std::fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheme {:?}; expected Dir<i>B, Dir<i>NB, DirnB, DirnNB, \
             CoarseVector, Tang, YenFu, DirUpd, WTI, Illinois, Dragon or Berkeley",
            self.input
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl std::str::FromStr for Scheme {
    type Err = ParseSchemeError;

    /// Parses the paper's notation, case-insensitively: `Dir0B`, `Dir2NB`,
    /// `DirnNB`, `WTI`, `Dragon`, `Berkeley`, `CoarseVector`, `Tang`,
    /// `YenFu`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSchemeError {
            input: s.to_string(),
        };
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "wti" => return Ok(Scheme::Wti),
            "illinois" | "mesi" => return Ok(Scheme::Illinois),
            "dragon" => return Ok(Scheme::Dragon),
            "berkeley" => return Ok(Scheme::Berkeley),
            "coarsevector" | "coarse-vector" | "coarse" => return Ok(Scheme::CoarseVector),
            "tang" => return Ok(Scheme::Tang),
            "yenfu" | "yen-fu" => return Ok(Scheme::YenFu),
            "dirupd" | "dirupdate" | "dir-update" => return Ok(Scheme::DirUpdate),
            _ => {}
        }
        let rest = lower.strip_prefix("dir").ok_or_else(err)?;
        let (count, broadcast) = if let Some(c) = rest.strip_suffix("nb") {
            (c, false)
        } else if let Some(c) = rest.strip_suffix('b') {
            (c, true)
        } else {
            return Err(err());
        };
        let capacity = if count == "n" {
            directory::PointerCapacity::Full
        } else {
            directory::PointerCapacity::Limited(count.parse().map_err(|_| err())?)
        };
        let spec = DirSpec::new(capacity, broadcast).map_err(|_| err())?;
        Ok(Scheme::Directory(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lineup_order_and_names() {
        let names: Vec<String> = Scheme::paper_lineup().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Dir1NB", "WTI", "Dir0B", "Dragon"]);
    }

    #[test]
    fn build_matches_name() {
        for scheme in [
            Scheme::Directory(DirSpec::dir0_b()),
            Scheme::CoarseVector,
            Scheme::Tang,
            Scheme::YenFu,
            Scheme::Wti,
            Scheme::Dragon,
            Scheme::Berkeley,
        ] {
            let p = scheme.build(4);
            assert_eq!(p.name(), scheme.name());
            assert_eq!(p.cache_count(), 4);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Scheme::Dragon.to_string(), "Dragon");
        assert_eq!(Scheme::Directory(DirSpec::dir1_b()).to_string(), "Dir1B");
    }

    #[test]
    fn parse_round_trips_every_scheme() {
        let mut schemes = Scheme::paper_lineup();
        schemes.extend([
            Scheme::Directory(DirSpec::dir_n_nb()),
            Scheme::Directory(DirSpec::dir1_b()),
            Scheme::Directory(DirSpec::dir_i_b(7)),
            Scheme::Directory(DirSpec::dir_i_nb(3).unwrap()),
            Scheme::CoarseVector,
            Scheme::Tang,
            Scheme::YenFu,
            Scheme::DirUpdate,
            Scheme::Illinois,
            Scheme::Berkeley,
        ]);
        for scheme in schemes {
            let parsed: Scheme = scheme.name().parse().unwrap();
            assert_eq!(parsed, scheme);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("dir0b".parse::<Scheme>().unwrap().name(), "Dir0B");
        assert_eq!("DRAGON".parse::<Scheme>().unwrap(), Scheme::Dragon);
        assert_eq!("dirnnb".parse::<Scheme>().unwrap().name(), "DirnNB");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "Dir", "DirXB", "Dir0NB", "MOESI", "Dir-1B"] {
            let err = bad.parse::<Scheme>().unwrap_err();
            assert!(err.to_string().contains("unknown scheme"), "{bad}");
        }
    }

    #[test]
    fn dir_spec_accessor() {
        assert_eq!(
            Scheme::Directory(DirSpec::dir1_b()).dir_spec(),
            Some(DirSpec::dir1_b())
        );
        assert_eq!(Scheme::Tang.dir_spec(), None);
        assert_eq!(Scheme::Dragon.dir_spec(), None);
    }

    #[test]
    fn snoopy_classification() {
        assert!(Scheme::Wti.is_snoopy());
        assert!(Scheme::Dragon.is_snoopy());
        assert!(Scheme::Berkeley.is_snoopy());
        assert!(!Scheme::Directory(DirSpec::dir0_b()).is_snoopy());
        assert!(!Scheme::CoarseVector.is_snoopy());
        assert!(!Scheme::Tang.is_snoopy());
    }
}
