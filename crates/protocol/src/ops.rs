//! Bus operations and data movements emitted by protocols.
//!
//! Each classified reference yields a [`RefOutcome`]: the Table 4 event, the
//! [`BusOp`]s the protocol put on the bus (priced later by `dirsim-cost`),
//! the semantic [`DataMovement`]s (checked by the `dirsim-mem` oracle), and
//! — on writes to previously-clean blocks — the invalidation fan-out that
//! drives the paper's Figure 1.

use std::fmt;
use std::ops::{Index, IndexMut};

use dirsim_mem::CacheId;

use crate::event::EventKind;

/// One operation occupying the bus (or interconnect), in the vocabulary of
/// the paper's §4.3 cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BusOp {
    /// Block fetch serviced by main memory.
    MemRead,
    /// Block fetch serviced by another cache (Berkeley/Dragon supply).
    CacheSupply,
    /// Dirty-block flush to memory; the requesting cache (if any) snarfs
    /// the data off the bus, so no separate fetch is needed.
    WriteBack,
    /// Single-word write-through to memory (WTI).
    WriteThrough,
    /// Single-word update broadcast to other cached copies (Dragon).
    WriteUpdate,
    /// Directory access that could *not* be overlapped with a memory
    /// access (e.g. a write hit to a clean block querying the directory).
    DirLookup,
    /// A directory/cache *state* update message that carries no data — e.g.
    /// the Yen & Fu scheme's traffic to keep per-cache "single" bits
    /// current (§2: "extra bus bandwidth is consumed to keep the single
    /// bits updated").
    DirUpdate,
    /// One directed invalidation or write-back request to a specific cache.
    Invalidate,
    /// Bus-wide broadcast invalidation (cost parameterised as `b` in §6).
    BroadcastInvalidate,
}

impl BusOp {
    /// All operations, in display order.
    pub const ALL: [BusOp; 9] = [
        BusOp::MemRead,
        BusOp::CacheSupply,
        BusOp::WriteBack,
        BusOp::WriteThrough,
        BusOp::WriteUpdate,
        BusOp::DirLookup,
        BusOp::DirUpdate,
        BusOp::Invalidate,
        BusOp::BroadcastInvalidate,
    ];

    /// Short name used in breakdown tables.
    pub fn name(self) -> &'static str {
        match self {
            BusOp::MemRead => "mem-read",
            BusOp::CacheSupply => "cache-supply",
            BusOp::WriteBack => "write-back",
            BusOp::WriteThrough => "write-through",
            BusOp::WriteUpdate => "write-update",
            BusOp::DirLookup => "dir-lookup",
            BusOp::DirUpdate => "dir-update",
            BusOp::Invalidate => "invalidate",
            BusOp::BroadcastInvalidate => "bcast-invalidate",
        }
    }

    fn ordinal(self) -> usize {
        match self {
            BusOp::MemRead => 0,
            BusOp::CacheSupply => 1,
            BusOp::WriteBack => 2,
            BusOp::WriteThrough => 3,
            BusOp::WriteUpdate => 4,
            BusOp::DirLookup => 5,
            BusOp::DirUpdate => 6,
            BusOp::Invalidate => 7,
            BusOp::BroadcastInvalidate => 8,
        }
    }
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-[`BusOp`] occurrence counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: [u64; 9],
}

impl OpCounts {
    /// Creates a zeroed table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` occurrences of `op`.
    pub fn record(&mut self, op: BusOp, n: u64) {
        self.counts[op.ordinal()] += n;
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Iterates `(op, count)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (BusOp, u64)> + '_ {
        BusOp::ALL.iter().map(move |&op| (op, self[op]))
    }

    /// Sum of all operation counts.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Index<BusOp> for OpCounts {
    type Output = u64;

    fn index(&self, op: BusOp) -> &u64 {
        &self.counts[op.ordinal()]
    }
}

impl IndexMut<BusOp> for OpCounts {
    fn index_mut(&mut self, op: BusOp) -> &mut u64 {
        &mut self.counts[op.ordinal()]
    }
}

/// A semantic movement or mutation of block data, fed to the
/// [`dirsim_mem::ShadowMemory`] oracle to check protocol correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMovement {
    /// `cache` filled the block from main memory.
    FillFromMemory {
        /// Receiving cache.
        cache: CacheId,
    },
    /// `cache` filled the block from `supplier`'s copy.
    FillFromCache {
        /// Receiving cache.
        cache: CacheId,
        /// Supplying cache.
        supplier: CacheId,
    },
    /// `cache` performed a copy-back write to its resident copy.
    CacheWrite {
        /// Writing cache.
        cache: CacheId,
    },
    /// `cache` performed a write-through (copy and memory updated).
    WriteThrough {
        /// Writing cache.
        cache: CacheId,
    },
    /// `cache` performed an update-broadcast write (all copies refreshed).
    WriteUpdate {
        /// Writing cache.
        cache: CacheId,
    },
    /// `cache` flushed its copy to memory.
    WriteBack {
        /// Flushing cache.
        cache: CacheId,
    },
    /// `cache`'s copy was invalidated.
    Invalidate {
        /// Cache losing its copy.
        cache: CacheId,
    },
}

impl DataMovement {
    /// Compact, stable label for serialized transition tables and diffs,
    /// e.g. `fill-mem(c0)`, `fill-cache(c2<-c0)`, `inval(c1)`.
    pub fn code(&self) -> String {
        match self {
            DataMovement::FillFromMemory { cache } => format!("fill-mem({cache})"),
            DataMovement::FillFromCache { cache, supplier } => {
                format!("fill-cache({cache}<-{supplier})")
            }
            DataMovement::CacheWrite { cache } => format!("write({cache})"),
            DataMovement::WriteThrough { cache } => format!("write-through({cache})"),
            DataMovement::WriteUpdate { cache } => format!("write-update({cache})"),
            DataMovement::WriteBack { cache } => format!("write-back({cache})"),
            DataMovement::Invalidate { cache } => format!("inval({cache})"),
        }
    }

    /// The cache performing or suffering the movement (the requester for
    /// cache-to-cache fills).
    pub fn cache(&self) -> CacheId {
        match *self {
            DataMovement::FillFromMemory { cache }
            | DataMovement::FillFromCache { cache, .. }
            | DataMovement::CacheWrite { cache }
            | DataMovement::WriteThrough { cache }
            | DataMovement::WriteUpdate { cache }
            | DataMovement::WriteBack { cache }
            | DataMovement::Invalidate { cache } => cache,
        }
    }
}

/// The full result of classifying and executing one data reference.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefOutcome {
    /// Table 4 classification.
    pub event: Option<EventKind>,
    /// Bus operations to price. Cold (first-reference) fills follow the
    /// paper's methodology and contribute **no** ops.
    pub ops: Vec<BusOp>,
    /// Semantic data movements for the correctness oracle, in order.
    pub movements: Vec<DataMovement>,
    /// On a write to a previously-clean block (`wh-blk-cln` / `wm-blk-cln`),
    /// the number of *other* caches that held the block — the Figure 1
    /// histogram datum.
    pub clean_write_fanout: Option<u32>,
}

impl RefOutcome {
    /// Creates an outcome for `event` with no ops or movements.
    pub fn event(event: EventKind) -> Self {
        RefOutcome {
            event: Some(event),
            ..Self::default()
        }
    }

    /// The classified event.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was constructed without an event; protocol
    /// implementations always set one.
    pub fn kind(&self) -> EventKind {
        self.event.expect("protocol outcomes always carry an event")
    }

    /// Whether this reference used the bus at all (a "bus transaction" for
    /// Figure 5 and the §5.1 fixed-overhead model).
    pub fn is_bus_transaction(&self) -> bool {
        !self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_and_order() {
        assert_eq!(BusOp::ALL.len(), 9);
        assert_eq!(BusOp::MemRead.name(), "mem-read");
        assert_eq!(BusOp::BroadcastInvalidate.to_string(), "bcast-invalidate");
    }

    #[test]
    fn op_ordinals_unique() {
        let mut seen = [false; 9];
        for op in BusOp::ALL {
            assert!(!seen[op.ordinal()]);
            seen[op.ordinal()] = true;
        }
    }

    #[test]
    fn op_counts_accumulate() {
        let mut c = OpCounts::new();
        c.record(BusOp::MemRead, 3);
        c.record(BusOp::Invalidate, 2);
        c.record(BusOp::MemRead, 1);
        assert_eq!(c[BusOp::MemRead], 4);
        assert_eq!(c[BusOp::Invalidate], 2);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn op_counts_merge() {
        let mut a = OpCounts::new();
        a.record(BusOp::WriteBack, 1);
        let mut b = OpCounts::new();
        b.record(BusOp::WriteBack, 2);
        b.record(BusOp::DirLookup, 5);
        a.merge(&b);
        assert_eq!(a[BusOp::WriteBack], 3);
        assert_eq!(a[BusOp::DirLookup], 5);
    }

    #[test]
    fn movement_codes_are_compact_and_distinct() {
        let c0 = CacheId::new(0);
        let c2 = CacheId::new(2);
        assert_eq!(
            DataMovement::FillFromMemory { cache: c0 }.code(),
            "fill-mem($#0)"
        );
        assert_eq!(
            DataMovement::FillFromCache {
                cache: c2,
                supplier: c0
            }
            .code(),
            "fill-cache($#2<-$#0)"
        );
        assert_eq!(DataMovement::Invalidate { cache: c2 }.code(), "inval($#2)");
        assert_eq!(DataMovement::WriteBack { cache: c0 }.cache(), c0);
        assert_eq!(
            DataMovement::FillFromCache {
                cache: c2,
                supplier: c0
            }
            .cache(),
            c2
        );
    }

    #[test]
    fn outcome_event_constructor() {
        let o = RefOutcome::event(EventKind::RdHit);
        assert_eq!(o.kind(), EventKind::RdHit);
        assert!(!o.is_bus_transaction());
        assert!(o.movements.is_empty());
        assert_eq!(o.clean_write_fanout, None);
    }

    #[test]
    fn bus_transaction_detection() {
        let mut o = RefOutcome::event(EventKind::RmBlkCln);
        o.ops.push(BusOp::MemRead);
        assert!(o.is_bus_transaction());
    }

    #[test]
    #[should_panic(expected = "always carry an event")]
    fn kind_panics_without_event() {
        let o = RefOutcome::default();
        let _ = o.kind();
    }
}
