//! Ordered set of caches holding a block.
//!
//! [`SharerSet`] preserves *insertion order* so that pointer-limited
//! directory schemes can apply deterministic eviction policies (evict the
//! oldest sharer), and so that broadcast-free invalidation can enumerate
//! holders in a stable order.

use dirsim_mem::CacheId;

/// Insertion-ordered set of cache identities.
///
/// Sized for coherence simulations (tens to a few thousand caches); lookups
/// are linear, which is faster than hashing at these cardinalities.
///
/// # Examples
///
/// ```
/// use dirsim_protocol::sharer_set::SharerSet;
/// use dirsim_mem::CacheId;
///
/// let mut s = SharerSet::new();
/// s.insert(CacheId::new(2));
/// s.insert(CacheId::new(0));
/// s.insert(CacheId::new(2)); // duplicate, ignored
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.oldest(), Some(CacheId::new(2)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharerSet {
    members: Vec<CacheId>,
}

impl SharerSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding a single cache.
    pub fn singleton(cache: CacheId) -> Self {
        SharerSet {
            members: vec![cache],
        }
    }

    /// Inserts a cache; returns `true` if it was not already present.
    pub fn insert(&mut self, cache: CacheId) -> bool {
        if self.contains(cache) {
            false
        } else {
            self.members.push(cache);
            true
        }
    }

    /// Removes a cache; returns `true` if it was present.
    pub fn remove(&mut self, cache: CacheId) -> bool {
        match self.members.iter().position(|&c| c == cache) {
            Some(i) => {
                self.members.remove(i);
                true
            }
            None => false,
        }
    }

    /// Whether the cache is a member.
    pub fn contains(&self, cache: CacheId) -> bool {
        self.members.contains(&cache)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The earliest-inserted member still present, if any.
    pub fn oldest(&self) -> Option<CacheId> {
        self.members.first().copied()
    }

    /// The earliest-inserted member other than `except`, if any.
    pub fn oldest_other(&self, except: CacheId) -> Option<CacheId> {
        self.members.iter().copied().find(|&c| c != except)
    }

    /// Iterates members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.members.iter().copied()
    }

    /// Members other than `except`, in insertion order.
    pub fn others(&self, except: CacheId) -> impl Iterator<Item = CacheId> + '_ {
        self.members.iter().copied().filter(move |&c| c != except)
    }

    /// Number of members other than `except`.
    pub fn count_others(&self, except: CacheId) -> usize {
        self.members.iter().filter(|&&c| c != except).count()
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.members.clear();
    }

    /// Retains only `cache` (dropping everything else).
    pub fn retain_only(&mut self, cache: CacheId) {
        self.members.retain(|&c| c == cache);
    }
}

impl FromIterator<CacheId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CacheId>>(iter: I) -> Self {
        let mut set = SharerSet::new();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

impl Extend<CacheId> for SharerSet {
    fn extend<I: IntoIterator<Item = CacheId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl<'a> IntoIterator for &'a SharerSet {
    type Item = CacheId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, CacheId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn insert_dedups() {
        let mut s = SharerSet::new();
        assert!(s.insert(c(1)));
        assert!(!s.insert(c(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let mut s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        assert!(s.contains(c(2)));
        assert!(s.remove(c(2)));
        assert!(!s.remove(c(2)));
        assert!(!s.contains(c(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut s = SharerSet::new();
        s.insert(c(5));
        s.insert(c(1));
        s.insert(c(9));
        let order: Vec<_> = s.iter().collect();
        assert_eq!(order, vec![c(5), c(1), c(9)]);
        assert_eq!(s.oldest(), Some(c(5)));
    }

    #[test]
    fn oldest_other_skips_exception() {
        let s: SharerSet = [c(5), c(1)].into_iter().collect();
        assert_eq!(s.oldest_other(c(5)), Some(c(1)));
        assert_eq!(s.oldest_other(c(1)), Some(c(5)));
        let solo = SharerSet::singleton(c(7));
        assert_eq!(solo.oldest_other(c(7)), None);
    }

    #[test]
    fn others_and_count() {
        let s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        let others: Vec<_> = s.others(c(2)).collect();
        assert_eq!(others, vec![c(1), c(3)]);
        assert_eq!(s.count_others(c(2)), 2);
        assert_eq!(s.count_others(c(9)), 3);
    }

    #[test]
    fn retain_only() {
        let mut s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        s.retain_only(c(2));
        assert_eq!(s.len(), 1);
        assert!(s.contains(c(2)));
        let mut t: SharerSet = [c(1)].into_iter().collect();
        t.retain_only(c(9));
        assert!(t.is_empty());
    }

    #[test]
    fn reinsert_does_not_refresh_insertion_order() {
        // A duplicate insert must keep the original position: `Dir_iNB`
        // eviction picks the *oldest* sharer, and a re-reading cache must
        // not be rejuvenated (it consumed no new pointer slot).
        let mut s: SharerSet = [c(1), c(2)].into_iter().collect();
        assert!(!s.insert(c(1)));
        assert_eq!(s.oldest(), Some(c(1)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(1), c(2)]);
    }

    #[test]
    fn remove_then_reinsert_moves_to_newest() {
        // After an eviction, a returning sharer is the newest again — the
        // order the `Dir_iNB` victim selection depends on.
        let mut s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        assert!(s.remove(c(1)));
        assert!(s.insert(c(1)));
        assert_eq!(s.oldest(), Some(c(2)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(2), c(3), c(1)]);
        assert_eq!(s.oldest_other(c(2)), Some(c(3)));
    }

    #[test]
    fn clear_empties() {
        let mut s: SharerSet = [c(1), c(2)].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.oldest(), None);
    }

    #[test]
    fn extend_and_ref_iter() {
        let mut s = SharerSet::new();
        s.extend([c(1), c(2), c(1)]);
        assert_eq!(s.len(), 2);
        let via_ref: Vec<_> = (&s).into_iter().collect();
        assert_eq!(via_ref, vec![c(1), c(2)]);
    }
}
