//! Ordered set of caches holding a block, packed for the hot path.
//!
//! [`SharerSet`] preserves *insertion order* so that pointer-limited
//! directory schemes can apply deterministic eviction policies (evict the
//! oldest sharer), and so that broadcast-free invalidation can enumerate
//! holders in a stable order.
//!
//! Internally membership lives in a packed `u64` bitmap (one bit per cache
//! id below [`WORD_BITS`]), so `contains`/`insert`/`count_others` are a
//! mask test or popcount instead of a linear scan. Cache ids at or above
//! [`WORD_BITS`] spill into extra heap-allocated bitmap words; sets wider
//! than [`INLINE_MEMBERS`] sharers spill their order buffer to the heap.
//! Both spills are reached only past the fast path, so simulations at the
//! paper's 4-64 cache scale never allocate per sharer-set operation.

use dirsim_mem::CacheId;

/// Number of cache ids covered by the inline bitmap word.
pub const WORD_BITS: u32 = 64;

/// Number of members tracked in the inline insertion-order buffer before
/// spilling to the heap.
pub const INLINE_MEMBERS: usize = 8;

/// Insertion-order storage: inline for small sets, heap Vec beyond that.
#[derive(Debug, Clone)]
enum Order {
    Inline {
        len: u8,
        buf: [CacheId; INLINE_MEMBERS],
    },
    Heap(Vec<CacheId>),
}

impl Order {
    #[inline]
    fn as_slice(&self) -> &[CacheId] {
        match self {
            Order::Inline { len, buf } => &buf[..*len as usize],
            Order::Heap(v) => v,
        }
    }

    #[inline]
    fn push(&mut self, cache: CacheId) {
        match self {
            Order::Inline { len, buf } => {
                let n = *len as usize;
                if n < INLINE_MEMBERS {
                    buf[n] = cache;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_MEMBERS * 2);
                    v.extend_from_slice(&buf[..n]);
                    v.push(cache);
                    *self = Order::Heap(v);
                }
            }
            Order::Heap(v) => v.push(cache),
        }
    }

    /// Removes the member at `pos`, shifting later members down (order of
    /// the survivors is preserved — this is what `oldest`-based eviction
    /// policies key on).
    fn remove_at(&mut self, pos: usize) {
        match self {
            Order::Inline { len, buf } => {
                let n = *len as usize;
                buf.copy_within(pos + 1..n, pos);
                *len -= 1;
            }
            Order::Heap(v) => {
                v.remove(pos);
            }
        }
    }

    fn clear(&mut self) {
        match self {
            Order::Inline { len, .. } => *len = 0,
            Order::Heap(v) => v.clear(),
        }
    }
}

impl Default for Order {
    fn default() -> Self {
        Order::Inline {
            len: 0,
            buf: [CacheId::new(0); INLINE_MEMBERS],
        }
    }
}

/// Insertion-ordered set of cache identities with a packed-word bitmap
/// carrying membership.
///
/// Membership tests and cardinality are O(1) bit operations on the inline
/// word for cache ids below [`WORD_BITS`]; wider systems spill to extra
/// bitmap words. Insertion order is kept alongside so that the directory
/// semantics pinned by the tests below (duplicate inserts do not
/// rejuvenate, remove-then-reinsert moves to newest) are bit-identical to
/// the original linear-scan representation.
///
/// # Examples
///
/// ```
/// use dirsim_protocol::sharer_set::SharerSet;
/// use dirsim_mem::CacheId;
///
/// let mut s = SharerSet::new();
/// s.insert(CacheId::new(2));
/// s.insert(CacheId::new(0));
/// s.insert(CacheId::new(2)); // duplicate, ignored
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.oldest(), Some(CacheId::new(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharerSet {
    /// Membership bits for cache ids `0..WORD_BITS`.
    word: u64,
    /// Membership bits for cache ids `WORD_BITS..`, one word per
    /// `WORD_BITS` ids; allocated only when such an id is inserted.
    /// Boxed on purpose: the spill is cold, and the double indirection
    /// keeps this field pointer-sized so `SharerSet` itself stays lean
    /// for the (universal) unspilled case.
    #[allow(clippy::box_collection)]
    high: Option<Box<Vec<u64>>>,
    order: Order,
}

impl SharerSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding a single cache.
    pub fn singleton(cache: CacheId) -> Self {
        let mut s = SharerSet::new();
        s.insert(cache);
        s
    }

    /// Inserts a cache; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, cache: CacheId) -> bool {
        let id = cache.index() as u32;
        if id < WORD_BITS {
            let bit = 1u64 << id;
            if self.word & bit != 0 {
                return false;
            }
            self.word |= bit;
        } else if !self.set_high(id) {
            return false;
        }
        self.order.push(cache);
        true
    }

    /// Removes a cache; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, cache: CacheId) -> bool {
        let id = cache.index() as u32;
        if id < WORD_BITS {
            let bit = 1u64 << id;
            if self.word & bit == 0 {
                return false;
            }
            self.word &= !bit;
        } else if !self.clear_high(id) {
            return false;
        }
        let pos = self
            .order
            .as_slice()
            .iter()
            .position(|&c| c == cache)
            .expect("bitmap and order buffer agree on membership");
        self.order.remove_at(pos);
        true
    }

    /// Whether the cache is a member.
    #[inline]
    pub fn contains(&self, cache: CacheId) -> bool {
        let id = cache.index() as u32;
        if id < WORD_BITS {
            self.word & (1u64 << id) != 0
        } else {
            self.high_bit(id)
        }
    }

    /// Number of members (popcount over the bitmap words).
    #[inline]
    pub fn len(&self) -> usize {
        let mut n = self.word.count_ones() as usize;
        if let Some(high) = &self.high {
            n += high.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        }
        n
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        let high_live = self
            .high
            .as_ref()
            .is_some_and(|h| h.iter().any(|&w| w != 0));
        self.word == 0 && !high_live
    }

    /// The earliest-inserted member still present, if any.
    #[inline]
    pub fn oldest(&self) -> Option<CacheId> {
        self.order.as_slice().first().copied()
    }

    /// The earliest-inserted member other than `except`, if any.
    #[inline]
    pub fn oldest_other(&self, except: CacheId) -> Option<CacheId> {
        self.order.as_slice().iter().copied().find(|&c| c != except)
    }

    /// Iterates members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.order.as_slice().iter().copied()
    }

    /// Members other than `except`, in insertion order.
    pub fn others(&self, except: CacheId) -> impl Iterator<Item = CacheId> + '_ {
        self.order
            .as_slice()
            .iter()
            .copied()
            .filter(move |&c| c != except)
    }

    /// Number of members other than `except` — a popcount minus a
    /// membership bit, never a scan.
    #[inline]
    pub fn count_others(&self, except: CacheId) -> usize {
        self.len() - usize::from(self.contains(except))
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.word = 0;
        if let Some(high) = &mut self.high {
            high.iter_mut().for_each(|w| *w = 0);
        }
        self.order.clear();
    }

    /// Retains only `cache` (dropping everything else).
    pub fn retain_only(&mut self, cache: CacheId) {
        let keep = self.contains(cache);
        self.clear();
        if keep {
            self.insert(cache);
        }
    }

    /// Tests the spill-word bit for a high cache id.
    #[cold]
    fn high_bit(&self, id: u32) -> bool {
        let word = (id / WORD_BITS - 1) as usize;
        let bit = 1u64 << (id % WORD_BITS);
        self.high
            .as_ref()
            .and_then(|h| h.get(word))
            .is_some_and(|w| w & bit != 0)
    }

    /// Sets the spill-word bit for a high cache id; `false` if already set.
    #[cold]
    fn set_high(&mut self, id: u32) -> bool {
        let word = (id / WORD_BITS - 1) as usize;
        let bit = 1u64 << (id % WORD_BITS);
        let high = self.high.get_or_insert_with(Default::default);
        if high.len() <= word {
            high.resize(word + 1, 0);
        }
        if high[word] & bit != 0 {
            return false;
        }
        high[word] |= bit;
        true
    }

    /// Clears the spill-word bit for a high cache id; `false` if unset.
    #[cold]
    fn clear_high(&mut self, id: u32) -> bool {
        let word = (id / WORD_BITS - 1) as usize;
        let bit = 1u64 << (id % WORD_BITS);
        match &mut self.high {
            Some(high) if high.len() > word && high[word] & bit != 0 => {
                high[word] &= !bit;
                true
            }
            _ => false,
        }
    }
}

/// Equality is membership *and* insertion order — two sets that hold the
/// same caches in different arrival order are different directory states.
impl PartialEq for SharerSet {
    fn eq(&self, other: &Self) -> bool {
        self.order.as_slice() == other.order.as_slice()
    }
}

impl Eq for SharerSet {}

impl FromIterator<CacheId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CacheId>>(iter: I) -> Self {
        let mut set = SharerSet::new();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

impl Extend<CacheId> for SharerSet {
    fn extend<I: IntoIterator<Item = CacheId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl<'a> IntoIterator for &'a SharerSet {
    type Item = CacheId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, CacheId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.order.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn insert_dedups() {
        let mut s = SharerSet::new();
        assert!(s.insert(c(1)));
        assert!(!s.insert(c(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let mut s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        assert!(s.contains(c(2)));
        assert!(s.remove(c(2)));
        assert!(!s.remove(c(2)));
        assert!(!s.contains(c(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut s = SharerSet::new();
        s.insert(c(5));
        s.insert(c(1));
        s.insert(c(9));
        let order: Vec<_> = s.iter().collect();
        assert_eq!(order, vec![c(5), c(1), c(9)]);
        assert_eq!(s.oldest(), Some(c(5)));
    }

    #[test]
    fn oldest_other_skips_exception() {
        let s: SharerSet = [c(5), c(1)].into_iter().collect();
        assert_eq!(s.oldest_other(c(5)), Some(c(1)));
        assert_eq!(s.oldest_other(c(1)), Some(c(5)));
        let solo = SharerSet::singleton(c(7));
        assert_eq!(solo.oldest_other(c(7)), None);
    }

    #[test]
    fn others_and_count() {
        let s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        let others: Vec<_> = s.others(c(2)).collect();
        assert_eq!(others, vec![c(1), c(3)]);
        assert_eq!(s.count_others(c(2)), 2);
        assert_eq!(s.count_others(c(9)), 3);
    }

    #[test]
    fn retain_only() {
        let mut s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        s.retain_only(c(2));
        assert_eq!(s.len(), 1);
        assert!(s.contains(c(2)));
        let mut t: SharerSet = [c(1)].into_iter().collect();
        t.retain_only(c(9));
        assert!(t.is_empty());
    }

    #[test]
    fn reinsert_does_not_refresh_insertion_order() {
        // A duplicate insert must keep the original position: `Dir_iNB`
        // eviction picks the *oldest* sharer, and a re-reading cache must
        // not be rejuvenated (it consumed no new pointer slot).
        let mut s: SharerSet = [c(1), c(2)].into_iter().collect();
        assert!(!s.insert(c(1)));
        assert_eq!(s.oldest(), Some(c(1)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(1), c(2)]);
    }

    #[test]
    fn remove_then_reinsert_moves_to_newest() {
        // After an eviction, a returning sharer is the newest again — the
        // order the `Dir_iNB` victim selection depends on.
        let mut s: SharerSet = [c(1), c(2), c(3)].into_iter().collect();
        assert!(s.remove(c(1)));
        assert!(s.insert(c(1)));
        assert_eq!(s.oldest(), Some(c(2)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(2), c(3), c(1)]);
        assert_eq!(s.oldest_other(c(2)), Some(c(3)));
    }

    #[test]
    fn clear_empties() {
        let mut s: SharerSet = [c(1), c(2)].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.oldest(), None);
    }

    #[test]
    fn extend_and_ref_iter() {
        let mut s = SharerSet::new();
        s.extend([c(1), c(2), c(1)]);
        assert_eq!(s.len(), 2);
        let via_ref: Vec<_> = (&s).into_iter().collect();
        assert_eq!(via_ref, vec![c(1), c(2)]);
    }

    #[test]
    fn inline_order_spills_past_inline_members() {
        // More members than the inline order buffer holds: order and
        // membership must survive the inline->heap promotion.
        let ids: Vec<_> = (0..(INLINE_MEMBERS as u32 + 4)).map(c).collect();
        let s: SharerSet = ids.iter().copied().collect();
        assert_eq!(s.len(), ids.len());
        assert_eq!(s.iter().collect::<Vec<_>>(), ids);
        assert!(s.contains(c(INLINE_MEMBERS as u32 + 3)));
    }

    #[test]
    fn high_ids_spill_past_word_bits() {
        // Ids at and above WORD_BITS live in spill words; mixing low and
        // high ids must keep membership and order coherent.
        let mut s = SharerSet::new();
        assert!(s.insert(c(3)));
        assert!(s.insert(c(WORD_BITS)));
        assert!(s.insert(c(WORD_BITS + 65)));
        assert!(!s.insert(c(WORD_BITS)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(c(WORD_BITS + 65)));
        assert!(!s.contains(c(WORD_BITS + 1)));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![c(3), c(WORD_BITS), c(WORD_BITS + 65)]
        );
        assert!(s.remove(c(WORD_BITS)));
        assert!(!s.remove(c(WORD_BITS)));
        assert_eq!(s.count_others(c(3)), 1);
        s.retain_only(c(WORD_BITS + 65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(WORD_BITS + 65)]);
        s.clear();
        assert!(s.is_empty());
    }
}
