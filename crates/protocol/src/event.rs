//! The reference-event taxonomy of the paper's Table 4.
//!
//! Every memory reference is classified into exactly one [`EventKind`]
//! according to the protocol's *state-change model*. Event frequencies
//! depend only on that model, not on how the protocol implements it — the
//! paper's key observation explaining why `Dir0B` and WTI have identical
//! frequencies (§5). Costs are attached separately (see `dirsim-cost`).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Classification of one memory reference (the paper's Table 4 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Instruction fetch (assumed to cause no coherence traffic).
    Instr,
    /// Read hit.
    RdHit,
    /// Read miss; block clean in another cache (or only in memory).
    RmBlkCln,
    /// Read miss; block dirty in another cache.
    RmBlkDrty,
    /// Read miss; first reference to the block in the trace (cold miss,
    /// excluded from coherence cost).
    RmFirstRef,
    /// Write hit; block clean in the writing cache.
    WhBlkCln,
    /// Write hit; block already dirty in the writing cache.
    WhBlkDrty,
    /// Write hit; block also present in another cache (update protocols).
    WhDistrib,
    /// Write hit; block in no other cache (update protocols).
    WhLocal,
    /// Write miss; block clean in another cache (or only in memory).
    WmBlkCln,
    /// Write miss; block dirty in another cache.
    WmBlkDrty,
    /// Write miss; first reference to the block in the trace (cold miss,
    /// excluded from coherence cost).
    WmFirstRef,
}

impl EventKind {
    /// All event kinds, in the paper's Table 4 order.
    pub const ALL: [EventKind; 12] = [
        EventKind::Instr,
        EventKind::RdHit,
        EventKind::RmBlkCln,
        EventKind::RmBlkDrty,
        EventKind::RmFirstRef,
        EventKind::WhBlkCln,
        EventKind::WhBlkDrty,
        EventKind::WhDistrib,
        EventKind::WhLocal,
        EventKind::WmBlkCln,
        EventKind::WmBlkDrty,
        EventKind::WmFirstRef,
    ];

    /// The paper's hyphenated name for this event.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Instr => "instr",
            EventKind::RdHit => "rd-hit",
            EventKind::RmBlkCln => "rm-blk-cln",
            EventKind::RmBlkDrty => "rm-blk-drty",
            EventKind::RmFirstRef => "rm-first-ref",
            EventKind::WhBlkCln => "wh-blk-cln",
            EventKind::WhBlkDrty => "wh-blk-drty",
            EventKind::WhDistrib => "wh-distrib",
            EventKind::WhLocal => "wh-local",
            EventKind::WmBlkCln => "wm-blk-cln",
            EventKind::WmBlkDrty => "wm-blk-drty",
            EventKind::WmFirstRef => "wm-first-ref",
        }
    }

    /// Whether this is a read-miss event (`rm`).
    pub fn is_read_miss(self) -> bool {
        matches!(self, EventKind::RmBlkCln | EventKind::RmBlkDrty)
    }

    /// Whether this is a write-miss event (`wm`).
    pub fn is_write_miss(self) -> bool {
        matches!(self, EventKind::WmBlkCln | EventKind::WmBlkDrty)
    }

    /// Whether this is a write-hit event (`wh`).
    pub fn is_write_hit(self) -> bool {
        matches!(
            self,
            EventKind::WhBlkCln | EventKind::WhBlkDrty | EventKind::WhDistrib | EventKind::WhLocal
        )
    }

    /// Whether this is a cold (first-reference) miss, excluded from
    /// coherence cost by the paper's methodology (§4).
    pub fn is_first_ref(self) -> bool {
        matches!(self, EventKind::RmFirstRef | EventKind::WmFirstRef)
    }

    fn ordinal(self) -> usize {
        match self {
            EventKind::Instr => 0,
            EventKind::RdHit => 1,
            EventKind::RmBlkCln => 2,
            EventKind::RmBlkDrty => 3,
            EventKind::RmFirstRef => 4,
            EventKind::WhBlkCln => 5,
            EventKind::WhBlkDrty => 6,
            EventKind::WhDistrib => 7,
            EventKind::WhLocal => 8,
            EventKind::WmBlkCln => 9,
            EventKind::WmBlkDrty => 10,
            EventKind::WmFirstRef => 11,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Event counts accumulated over a reference stream.
///
/// Indexable by [`EventKind`]; provides the derived aggregates the paper's
/// Table 4 reports (reads, writes, miss rates, …).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::event::{EventCounts, EventKind};
///
/// let mut counts = EventCounts::new();
/// counts.record(EventKind::RdHit);
/// counts.record(EventKind::RmBlkCln);
/// assert_eq!(counts.total(), 2);
/// assert_eq!(counts[EventKind::RdHit], 1);
/// assert!((counts.frequency(EventKind::RmBlkCln) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounts {
    counts: [u64; 12],
}

impl EventCounts {
    /// Creates a zeroed table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    pub fn record(&mut self, kind: EventKind) {
        self.counts[kind.ordinal()] += 1;
    }

    /// Records `n` occurrences of `kind` at once (batched accumulation).
    pub fn record_n(&mut self, kind: EventKind, n: u64) {
        self.counts[kind.ordinal()] += n;
    }

    /// Total references classified (sum over all kinds).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Frequency of an event as a fraction of all references.
    pub fn frequency(&self, kind: EventKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self[kind] as f64 / total as f64
        }
    }

    /// Total data reads (`rd-hit + rm + rm-first-ref`).
    pub fn reads(&self) -> u64 {
        self[EventKind::RdHit] + self.read_misses() + self[EventKind::RmFirstRef]
    }

    /// Total data writes (`wh + wm + wm-first-ref`).
    pub fn writes(&self) -> u64 {
        self.write_hits() + self.write_misses() + self[EventKind::WmFirstRef]
    }

    /// Read misses excluding cold misses (`rm` in the paper).
    pub fn read_misses(&self) -> u64 {
        self[EventKind::RmBlkCln] + self[EventKind::RmBlkDrty]
    }

    /// Write misses excluding cold misses (`wm` in the paper).
    pub fn write_misses(&self) -> u64 {
        self[EventKind::WmBlkCln] + self[EventKind::WmBlkDrty]
    }

    /// Write hits (`wh` in the paper).
    pub fn write_hits(&self) -> u64 {
        self[EventKind::WhBlkCln]
            + self[EventKind::WhBlkDrty]
            + self[EventKind::WhDistrib]
            + self[EventKind::WhLocal]
    }

    /// Data miss rate including cold misses, as a fraction of all
    /// references — the paper's "native + coherence" miss rate.
    pub fn data_miss_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let misses = self.read_misses()
            + self.write_misses()
            + self[EventKind::RmFirstRef]
            + self[EventKind::WmFirstRef];
        misses as f64 / total as f64
    }

    /// Coherence-induced miss rate (excludes cold misses).
    pub fn coherence_miss_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.read_misses() + self.write_misses()) as f64 / total as f64
    }

    /// Merges another count table into this one.
    pub fn merge(&mut self, other: &EventCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Iterates `(kind, count)` pairs in Table 4 order.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL.iter().map(move |&k| (k, self[k]))
    }
}

impl Index<EventKind> for EventCounts {
    type Output = u64;

    fn index(&self, kind: EventKind) -> &u64 {
        &self.counts[kind.ordinal()]
    }
}

impl IndexMut<EventKind> for EventCounts {
    fn index_mut(&mut self, kind: EventKind) -> &mut u64 {
        &mut self.counts[kind.ordinal()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_kind_once() {
        let mut seen = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert!(seen.insert(k), "{k} repeated");
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn ordinals_are_dense_and_unique() {
        let mut seen = [false; 12];
        for k in EventKind::ALL {
            assert!(!seen[k.ordinal()]);
            seen[k.ordinal()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(EventKind::RmBlkCln.name(), "rm-blk-cln");
        assert_eq!(EventKind::WhDistrib.name(), "wh-distrib");
        assert_eq!(EventKind::WmFirstRef.to_string(), "wm-first-ref");
    }

    #[test]
    fn predicates() {
        assert!(EventKind::RmBlkCln.is_read_miss());
        assert!(!EventKind::RmFirstRef.is_read_miss());
        assert!(EventKind::WmBlkDrty.is_write_miss());
        assert!(EventKind::WhLocal.is_write_hit());
        assert!(EventKind::RmFirstRef.is_first_ref());
        assert!(EventKind::WmFirstRef.is_first_ref());
        assert!(!EventKind::RdHit.is_first_ref());
    }

    #[test]
    fn record_and_totals() {
        let mut c = EventCounts::new();
        c.record(EventKind::Instr);
        c.record(EventKind::RdHit);
        c.record(EventKind::RdHit);
        c.record(EventKind::WmBlkCln);
        assert_eq!(c.total(), 4);
        assert_eq!(c[EventKind::RdHit], 2);
        assert_eq!(c.reads(), 2);
        assert_eq!(c.writes(), 1);
        assert_eq!(c.write_misses(), 1);
    }

    #[test]
    fn miss_rates() {
        let mut c = EventCounts::new();
        for _ in 0..6 {
            c.record(EventKind::RdHit);
        }
        c.record(EventKind::RmBlkCln);
        c.record(EventKind::RmFirstRef);
        c.record(EventKind::WmBlkDrty);
        c.record(EventKind::WmFirstRef);
        assert!((c.data_miss_rate() - 0.4).abs() < 1e-12);
        assert!((c.coherence_miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let c = EventCounts::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.frequency(EventKind::RdHit), 0.0);
        assert_eq!(c.data_miss_rate(), 0.0);
        assert_eq!(c.coherence_miss_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = EventCounts::new();
        a.record(EventKind::RdHit);
        let mut b = EventCounts::new();
        b.record(EventKind::RdHit);
        b.record(EventKind::Instr);
        a.merge(&b);
        assert_eq!(a[EventKind::RdHit], 2);
        assert_eq!(a[EventKind::Instr], 1);
    }

    #[test]
    fn iter_in_table_order() {
        let mut c = EventCounts::new();
        c.record(EventKind::WmFirstRef);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs.len(), 12);
        assert_eq!(pairs[0].0, EventKind::Instr);
        assert_eq!(pairs[11], (EventKind::WmFirstRef, 1));
    }
}
