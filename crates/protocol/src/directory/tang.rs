//! Tang's duplicate-tag directory organisation (§2).
//!
//! Tang's scheme keeps a copy of every cache's tag store at memory. The
//! *protocol* is the same full-map multiple-readers/single-writer policy as
//! Censier–Feautrier (`DirnNB`); what differs is the directory
//! **organisation**: "to find out which caches contain a block, Tang's
//! scheme must search each of these duplicate directories", whereas the
//! Censier–Feautrier bit map "allows this information to be accessed
//! directly using the address".
//!
//! [`Tang`] models that first-order cost: every unoverlapped directory
//! access becomes one lookup *per duplicate directory* (i.e. per cache).
//! Comparing `Tang` against `DirnNB` in the harness isolates exactly the
//! organisational win the paper credits to Censier & Feautrier.

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{BlockProbe, BlockState, CoherenceProtocol, StateSnapshot};
use crate::directory::{DirSpec, DirectoryProtocol};
use crate::ops::{BusOp, RefOutcome};

/// Tang's duplicate-tag organisation of the full-map directory.
///
/// # Examples
///
/// ```
/// use dirsim_protocol::directory::Tang;
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_protocol::ops::BusOp;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut tang = Tang::new(4);
/// let b = BlockAddr::new(0);
/// tang.on_data_ref(CacheId::new(0), b, false);
/// let w = tang.on_data_ref(CacheId::new(0), b, true); // clean write hit
/// // One search per duplicate cache directory:
/// assert_eq!(w.ops.iter().filter(|&&o| o == BusOp::DirLookup).count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Tang {
    inner: DirectoryProtocol,
    caches: u32,
}

impl Tang {
    /// Creates the protocol for `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        Tang {
            inner: DirectoryProtocol::new(DirSpec::dir_n_nb(), caches),
            caches,
        }
    }
}

impl CoherenceProtocol for Tang {
    fn name(&self) -> String {
        "Tang".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let mut out = self.inner.on_data_ref(cache, block, write);
        // Expand each unoverlapped directory access into a search of every
        // duplicate cache directory.
        let mut expanded = Vec::with_capacity(out.ops.len());
        for op in out.ops.drain(..) {
            if op == BusOp::DirLookup {
                expanded.extend(std::iter::repeat(BusOp::DirLookup).take(self.caches as usize));
            } else {
                expanded.push(op);
            }
        }
        out.ops = expanded;
        out
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        self.inner.evict(cache, block)
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.inner.probe(block)
    }

    fn tracked_blocks(&self) -> usize {
        self.inner.tracked_blocks()
    }

    fn snapshot(&self) -> StateSnapshot {
        self.inner.snapshot()
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.inner.block_state(block)
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    const B: BlockAddr = BlockAddr::new(2);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn events_match_dirn_nb() {
        let mut tang = Tang::new(4);
        let mut dirn = DirectoryProtocol::new(DirSpec::dir_n_nb(), 4);
        let mut x: u64 = 31;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cache = c((x >> 33) as u32 % 4);
            let block = BlockAddr::new((x >> 13) % 8);
            let write = x % 3 == 0;
            let a = tang.on_data_ref(cache, block, write);
            let b = dirn.on_data_ref(cache, block, write);
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.movements, b.movements);
        }
    }

    #[test]
    fn directory_searches_scale_with_cache_count() {
        for n in [2u32, 4, 8] {
            let mut tang = Tang::new(n);
            tang.on_data_ref(c(0), B, false);
            tang.on_data_ref(c(1), B, false);
            let out = tang.on_data_ref(c(0), B, true); // clean write hit
            assert_eq!(out.kind(), EventKind::WhBlkCln);
            let lookups = out.ops.iter().filter(|&&o| o == BusOp::DirLookup).count();
            assert_eq!(lookups, n as usize);
        }
    }

    #[test]
    fn non_directory_ops_are_untouched() {
        let mut tang = Tang::new(4);
        tang.on_data_ref(c(0), B, true); // cold write
        let out = tang.on_data_ref(c(1), B, false); // dirty read miss
        assert_eq!(out.ops, vec![BusOp::Invalidate, BusOp::WriteBack]);
    }

    #[test]
    fn name_is_tang() {
        assert_eq!(Tang::new(4).name(), "Tang");
    }
}
