//! The §6 coarse-vector sharer code and its limited-broadcast protocol.
//!
//! To cut directory storage below a full bit map, §6 proposes storing "a
//! word with `d` digits where each digit takes on one of three values: 0, 1
//! and *both*". With no *both* digits the word names exactly one cache;
//! each *both* digit doubles the denoted set. The word always denotes a
//! **superset** of the caches holding the block, using `2·log₂(n)` bits for
//! `n` caches. Invalidations become a *limited broadcast*: directed messages
//! to every cache in the superset.

use dirsim_mem::FxHashMap;
use std::fmt;

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{BlockProbe, BlockState, CacheSymmetry, CoherenceProtocol, StateSnapshot};
use crate::event::EventKind;
use crate::ops::{BusOp, DataMovement, RefOutcome};
use crate::sharer_set::SharerSet;

/// The ternary-digit code of §6: a superset-of-sharers representation in
/// `2·d` bits (`d = ⌈log₂ n⌉` digits).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::directory::CoarseCode;
///
/// let mut code = CoarseCode::new(4); // 4 caches → 2 digits
/// code.insert(0b01);
/// assert_eq!(code.superset_size(), 1);
/// code.insert(0b11); // differs in digit 1 → that digit becomes `both`
/// assert_eq!(code.superset_size(), 2);
/// assert!(code.denotes(0b01) && code.denotes(0b11));
/// assert!(!code.denotes(0b00));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoarseCode {
    /// Digit values where not `both`.
    fixed_bits: u64,
    /// Digits coded `both`.
    both_mask: u64,
    /// Number of digits (`⌈log₂ n⌉`).
    digits: u32,
    /// Whether any index has been inserted.
    empty: bool,
}

impl CoarseCode {
    /// Creates an empty code for a system of `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        assert!(caches > 0, "need at least one cache");
        let digits = if caches <= 1 {
            1
        } else {
            32 - (caches - 1).leading_zeros()
        };
        CoarseCode {
            fixed_bits: 0,
            both_mask: 0,
            digits,
            empty: true,
        }
    }

    /// Storage cost in bits: two bits per digit (§6).
    pub fn storage_bits(&self) -> u32 {
        2 * self.digits
    }

    /// Number of digits.
    pub fn digits(&self) -> u32 {
        self.digits
    }

    /// Adds a cache index to the denoted set, widening digits to `both`
    /// where it disagrees with the current fixed bits.
    pub fn insert(&mut self, index: u64) {
        if self.empty {
            self.fixed_bits = index;
            self.both_mask = 0;
            self.empty = false;
            return;
        }
        let disagree = (self.fixed_bits ^ index) & !self.both_mask;
        self.both_mask |= disagree;
        self.fixed_bits &= !self.both_mask;
    }

    /// Resets to the empty code.
    pub fn clear(&mut self) {
        self.empty = true;
        self.fixed_bits = 0;
        self.both_mask = 0;
    }

    /// Resets to denote exactly one cache.
    pub fn reset_to(&mut self, index: u64) {
        self.fixed_bits = index;
        self.both_mask = 0;
        self.empty = false;
    }

    /// Whether the code's superset contains the cache index.
    pub fn denotes(&self, index: u64) -> bool {
        if self.empty {
            return false;
        }
        let digit_mask = if self.digits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.digits) - 1
        };
        ((index ^ self.fixed_bits) & !self.both_mask & digit_mask) == 0
    }

    /// Size of the denoted superset (over the full digit space).
    pub fn superset_size(&self) -> u64 {
        if self.empty {
            0
        } else {
            1u64 << self.both_mask.count_ones()
        }
    }

    /// Enumerates the denoted cache indices that are below `caches`.
    pub fn members(&self, caches: u32) -> Vec<u64> {
        if self.empty {
            return Vec::new();
        }
        // Enumerate all assignments of the `both` digits.
        let both_positions: Vec<u32> = (0..self.digits)
            .filter(|&d| self.both_mask & (1 << d) != 0)
            .collect();
        let mut out = Vec::with_capacity(1 << both_positions.len());
        for combo in 0u64..(1u64 << both_positions.len()) {
            let mut idx = self.fixed_bits;
            for (bit, &pos) in both_positions.iter().enumerate() {
                if combo & (1 << bit) != 0 {
                    idx |= 1 << pos;
                }
            }
            if idx < u64::from(caches) {
                out.push(idx);
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Display for CoarseCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return f.write_str("∅");
        }
        for d in (0..self.digits).rev() {
            let ch = if self.both_mask & (1 << d) != 0 {
                '*'
            } else if self.fixed_bits & (1 << d) != 0 {
                '1'
            } else {
                '0'
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Entry {
    holders: SharerSet,
    dirty: bool,
    code: CoarseCode,
}

/// Directory protocol whose per-block sharer knowledge is a [`CoarseCode`]:
/// invalidations are directed to every cache in the coded superset (§6's
/// "limited broadcast").
///
/// The state-change model is identical to the broadcast directory schemes
/// (multiple clean copies, one dirty copy), so its event frequencies match
/// `Dir0B`; only the invalidation traffic differs.
#[derive(Debug, Clone)]
pub struct CoarseVectorProtocol {
    caches: u32,
    blocks: FxHashMap<BlockAddr, Entry>,
}

impl CoarseVectorProtocol {
    /// Creates the protocol for `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        assert!(caches > 0, "a coherence system needs at least one cache");
        CoarseVectorProtocol {
            caches,
            blocks: FxHashMap::default(),
        }
    }

    /// Directory storage per block in bits (`2·log₂ n`).
    pub fn storage_bits(&self) -> u32 {
        CoarseCode::new(self.caches).storage_bits()
    }

    fn new_entry(&self, cache: CacheId, dirty: bool) -> Entry {
        let mut code = CoarseCode::new(self.caches);
        code.reset_to(cache.index() as u64);
        let mut holders = SharerSet::new();
        holders.insert(cache);
        Entry {
            holders,
            dirty,
            code,
        }
    }

    /// Directed invalidates to every *other* cache in the coded superset.
    fn limited_broadcast_ops(caches: u32, entry: &Entry, writer: CacheId, ops: &mut Vec<BusOp>) {
        let targets = entry
            .code
            .members(caches)
            .into_iter()
            .filter(|&i| i != writer.index() as u64)
            .count();
        ops.extend(std::iter::repeat(BusOp::Invalidate).take(targets));
    }

    /// Canonical [`BlockState`] of one entry; the coarse code words ride
    /// in `aux` so states differing only in coding stay distinct.
    fn entry_state(block: BlockAddr, e: &Entry) -> BlockState {
        BlockState {
            block,
            holders: e.holders.iter().collect(),
            dirty: e.dirty,
            pointers: Vec::new(),
            broadcast_bit: false,
            aux: vec![e.code.fixed_bits, e.code.both_mask, u64::from(e.code.empty)],
        }
    }
}

impl CoherenceProtocol for CoarseVectorProtocol {
    fn name(&self) -> String {
        "CoarseVector".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let caches = self.caches;
        let Some(entry) = self.blocks.get_mut(&block) else {
            let entry = self.new_entry(cache, write);
            self.blocks.insert(block, entry);
            let kind = if write {
                EventKind::WmFirstRef
            } else {
                EventKind::RmFirstRef
            };
            let mut out = RefOutcome::event(kind);
            out.movements.push(DataMovement::FillFromMemory { cache });
            if write {
                out.movements.push(DataMovement::CacheWrite { cache });
            }
            return out;
        };

        let holds = entry.holders.contains(cache);
        match (write, holds, entry.dirty) {
            (false, true, _) => RefOutcome::event(EventKind::RdHit),
            (false, false, true) => {
                let owner = entry.holders.oldest().expect("dirty block has a holder");
                let mut out = RefOutcome::event(EventKind::RmBlkDrty);
                out.ops.push(BusOp::Invalidate);
                out.ops.push(BusOp::WriteBack);
                out.movements.push(DataMovement::WriteBack { cache: owner });
                out.movements.push(DataMovement::FillFromCache {
                    cache,
                    supplier: owner,
                });
                entry.dirty = false;
                entry.holders.insert(cache);
                entry.code.insert(cache.index() as u64);
                out
            }
            (false, false, false) => {
                let mut out = RefOutcome::event(EventKind::RmBlkCln);
                out.ops.push(BusOp::MemRead);
                out.movements.push(DataMovement::FillFromMemory { cache });
                entry.holders.insert(cache);
                entry.code.insert(cache.index() as u64);
                out
            }
            (true, true, true) => {
                let mut out = RefOutcome::event(EventKind::WhBlkDrty);
                out.movements.push(DataMovement::CacheWrite { cache });
                out
            }
            (true, true, false) => {
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(EventKind::WhBlkCln);
                out.clean_write_fanout = Some(remote.len() as u32);
                out.ops.push(BusOp::DirLookup);
                Self::limited_broadcast_ops(caches, entry, cache, &mut out.ops);
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.retain_only(cache);
                entry.dirty = true;
                entry.code.reset_to(cache.index() as u64);
                out
            }
            (true, false, true) => {
                let owner = entry.holders.oldest().expect("dirty block has a holder");
                let mut out = RefOutcome::event(EventKind::WmBlkDrty);
                out.ops.push(BusOp::Invalidate);
                out.ops.push(BusOp::WriteBack);
                out.movements.push(DataMovement::WriteBack { cache: owner });
                out.movements.push(DataMovement::FillFromCache {
                    cache,
                    supplier: owner,
                });
                out.movements
                    .push(DataMovement::Invalidate { cache: owner });
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.clear();
                entry.holders.insert(cache);
                entry.dirty = true;
                entry.code.reset_to(cache.index() as u64);
                out
            }
            (true, false, false) => {
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(EventKind::WmBlkCln);
                out.clean_write_fanout = Some(remote.len() as u32);
                out.ops.push(BusOp::MemRead);
                Self::limited_broadcast_ops(caches, entry, cache, &mut out.ops);
                out.movements.push(DataMovement::FillFromMemory { cache });
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.clear();
                entry.holders.insert(cache);
                entry.dirty = true;
                entry.code.reset_to(cache.index() as u64);
                out
            }
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        let Some(entry) = self.blocks.get_mut(&block) else {
            return out;
        };
        if !entry.holders.contains(cache) {
            return out;
        }
        if entry.dirty {
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache });
            entry.dirty = false;
        }
        entry.holders.remove(cache);
        // The coarse code cannot remove members; it stays a (now larger)
        // superset, which is safe — superset invalidation is the scheme's
        // defining property.
        out.movements.push(DataMovement::Invalidate { cache });
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.iter().collect(),
            dirty: e.dirty,
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| Self::entry_state(block, e))
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks.get(&block).map(|e| Self::entry_state(block, e))
    }

    fn cache_symmetry(&self) -> CacheSymmetry {
        // The code word stores the *binary representation* of cache
        // indices; a `both` digit denotes {x, x ^ bit}. Renaming caches
        // arbitrarily does not commute with that coding, so only
        // bit-permutation/complement renamings are symmetries.
        CacheSymmetry::Asymmetric
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr::new(9);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn code_single_member() {
        let mut code = CoarseCode::new(8);
        code.insert(5);
        assert_eq!(code.superset_size(), 1);
        assert_eq!(code.members(8), vec![5]);
        assert_eq!(code.to_string(), "101");
    }

    #[test]
    fn code_widens_on_disagreement() {
        let mut code = CoarseCode::new(8);
        code.insert(0b000);
        code.insert(0b011);
        // Digits 0 and 1 disagree → both; superset is {000,001,010,011}.
        assert_eq!(code.superset_size(), 4);
        assert_eq!(code.members(8), vec![0, 1, 2, 3]);
        assert_eq!(code.to_string(), "0**");
    }

    #[test]
    fn code_superset_always_contains_inserted() {
        let mut code = CoarseCode::new(16);
        for idx in [3u64, 9, 12, 1] {
            code.insert(idx);
            assert!(code.denotes(idx));
        }
        for idx in [3u64, 9, 12, 1] {
            assert!(code.denotes(idx), "{idx} must stay denoted");
        }
    }

    #[test]
    fn code_storage_is_two_log_n() {
        assert_eq!(CoarseCode::new(4).storage_bits(), 4);
        assert_eq!(CoarseCode::new(16).storage_bits(), 8);
        assert_eq!(CoarseCode::new(64).storage_bits(), 12);
        // Non-power-of-two rounds up.
        assert_eq!(CoarseCode::new(5).storage_bits(), 6);
    }

    #[test]
    fn code_members_respects_cache_count() {
        let mut code = CoarseCode::new(5); // 3 digits, indices 0..5
        code.insert(0);
        code.insert(4);
        // both on digit 2 → superset {0, 4}; both below 5.
        assert_eq!(code.members(5), vec![0, 4]);
        code.insert(3);
        // all digits both → superset is everything < 5.
        assert_eq!(code.members(5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn code_clear_and_reset() {
        let mut code = CoarseCode::new(4);
        code.insert(2);
        code.insert(1);
        code.clear();
        assert_eq!(code.superset_size(), 0);
        assert_eq!(code.to_string(), "∅");
        code.reset_to(3);
        assert_eq!(code.members(4), vec![3]);
    }

    #[test]
    fn protocol_invalidates_superset_not_just_holders() {
        let mut p = CoarseVectorProtocol::new(8);
        p.on_data_ref(c(0), B, false);
        p.on_data_ref(c(3), B, false);
        // Code for {0,3} = digits 0,1 both → superset {0,1,2,3}.
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        // Directed invalidates to superset minus the writer: {1,2,3} → 3.
        let invs = out.ops.iter().filter(|&&o| o == BusOp::Invalidate).count();
        assert_eq!(invs, 3);
        // But only the actual holder (3) semantically loses a copy.
        let inv_movements: Vec<_> = out
            .movements
            .iter()
            .filter(|m| matches!(m, DataMovement::Invalidate { .. }))
            .collect();
        assert_eq!(inv_movements.len(), 1);
    }

    #[test]
    fn protocol_exact_code_costs_one_invalidate() {
        let mut p = CoarseVectorProtocol::new(8);
        p.on_data_ref(c(2), B, false);
        let out = p.on_data_ref(c(6), B, true); // write miss, one clean holder
        assert_eq!(out.kind(), EventKind::WmBlkCln);
        let invs = out.ops.iter().filter(|&&o| o == BusOp::Invalidate).count();
        assert_eq!(invs, 1, "exact single-member code is a directed message");
    }

    #[test]
    fn protocol_matches_dir0b_events() {
        use crate::directory::{DirSpec, DirectoryProtocol};
        let mut coarse = CoarseVectorProtocol::new(4);
        let mut dir0b = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        let mut x: u64 = 7;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cache = c((x >> 33) as u32 % 4);
            let block = BlockAddr::new((x >> 13) % 6);
            let write = x % 3 == 0;
            let a = coarse.on_data_ref(cache, block, write);
            let b = dir0b.on_data_ref(cache, block, write);
            assert_eq!(a.kind(), b.kind(), "same state-change model");
        }
    }

    #[test]
    fn protocol_storage_bits() {
        assert_eq!(CoarseVectorProtocol::new(64).storage_bits(), 12);
    }

    #[test]
    fn protocol_name() {
        assert_eq!(CoarseVectorProtocol::new(4).name(), "CoarseVector");
    }
}
