//! The directory-scheme family — the paper's primary subject.
//!
//! * [`DirSpec`] — the `Dir_i{B,NB}` classification (§2).
//! * [`DirectoryProtocol`] — one machine covering `Dir1NB`, `Dir0B`,
//!   `Dir1B`, `DiriB`, `DiriNB` and `DirnNB`.
//! * [`CoarseVectorProtocol`] / [`CoarseCode`] — §6's `2·log n`-bit
//!   superset code with limited-broadcast invalidation.
//! * [`Tang`] — Tang's duplicate-tag directory organisation.
//! * [`YenFu`] — the Yen & Fu per-cache single-bit refinement.
//! * [`DirUpdate`] — a directory-driven *update* protocol (the fourth
//!   quadrant of {snoopy, directory} × {invalidate, update}).

mod coarse;
mod machine;
mod spec;
mod tang;
mod update;
mod yenfu;

pub use coarse::{CoarseCode, CoarseVectorProtocol};
pub use machine::DirectoryProtocol;
pub use spec::{DirSpec, EvictionPolicy, PointerCapacity, SpecError};
pub use tang::Tang;
pub use update::DirUpdate;
pub use yenfu::YenFu;
