//! The Yen & Fu refinement of the Censier–Feautrier directory (§2).
//!
//! The central directory is the full map of `DirnNB`, but each cache also
//! keeps a **single bit** per block, set iff that cache is the only one in
//! the system holding the block. A write hit to a clean block whose single
//! bit is set can proceed without *waiting* for a central-directory access;
//! the directory is still informed (a dataless [`BusOp::DirUpdate`]), and
//! extra bus traffic is needed to keep the single bits current whenever a
//! block goes from exclusively-held to shared. The paper's verdict — "the
//! scheme saves central directory accesses, but does not reduce the number
//! of bus accesses" — falls straight out of this model: every saved
//! `DirLookup` is replaced by a `DirUpdate`, and the single-bit clears add
//! messages on top.

use dirsim_mem::FxHashMap;

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{BlockProbe, BlockState, CoherenceProtocol, StateSnapshot};
use crate::event::EventKind;
use crate::ops::{BusOp, DataMovement, RefOutcome};
use crate::sharer_set::SharerSet;

#[derive(Debug, Clone, Default)]
struct Entry {
    holders: SharerSet,
    dirty: bool,
}

/// The Yen & Fu single-bit directory protocol (see module docs).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::directory::YenFu;
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_protocol::ops::BusOp;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut p = YenFu::new(4);
/// let b = BlockAddr::new(0);
/// p.on_data_ref(CacheId::new(0), b, false);
/// // Sole holder writes: the single bit lets the write proceed without a
/// // blocking directory check — only an asynchronous update goes out.
/// let w = p.on_data_ref(CacheId::new(0), b, true);
/// assert_eq!(w.ops, vec![BusOp::DirUpdate]);
/// ```
#[derive(Debug, Clone)]
pub struct YenFu {
    caches: u32,
    blocks: FxHashMap<BlockAddr, Entry>,
}

impl YenFu {
    /// Creates the protocol for `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        assert!(caches > 0, "a coherence system needs at least one cache");
        YenFu {
            caches,
            blocks: FxHashMap::default(),
        }
    }

    /// Emits the single-bit clear message if a block just went from
    /// exclusively-held to shared (the previous sole holder must be told).
    fn note_single_bit_clear(was_sole: bool, out: &mut RefOutcome) {
        if was_sole {
            out.ops.push(BusOp::DirUpdate);
        }
    }
}

impl CoherenceProtocol for YenFu {
    fn name(&self) -> String {
        "YenFu".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let Some(entry) = self.blocks.get_mut(&block) else {
            let mut entry = Entry::default();
            entry.holders.insert(cache);
            entry.dirty = write;
            self.blocks.insert(block, entry);
            let kind = if write {
                EventKind::WmFirstRef
            } else {
                EventKind::RmFirstRef
            };
            let mut out = RefOutcome::event(kind);
            out.movements.push(DataMovement::FillFromMemory { cache });
            if write {
                out.movements.push(DataMovement::CacheWrite { cache });
            }
            return out;
        };

        let holds = entry.holders.contains(cache);
        let was_sole = entry.holders.len() == 1;
        match (write, holds, entry.dirty) {
            (false, true, _) => RefOutcome::event(EventKind::RdHit),
            (false, false, true) => {
                let owner = entry.holders.oldest().expect("dirty block has a holder");
                let mut out = RefOutcome::event(EventKind::RmBlkDrty);
                out.ops.push(BusOp::Invalidate); // write-back request
                out.ops.push(BusOp::WriteBack);
                // The owner's single bit is cleared by the write-back
                // request itself — no extra message.
                out.movements.push(DataMovement::WriteBack { cache: owner });
                out.movements.push(DataMovement::FillFromCache {
                    cache,
                    supplier: owner,
                });
                entry.dirty = false;
                entry.holders.insert(cache);
                out
            }
            (false, false, false) => {
                let mut out = RefOutcome::event(EventKind::RmBlkCln);
                out.ops.push(BusOp::MemRead);
                // Going 1 → 2 holders clears the previous sole holder's
                // single bit: a dedicated bus message.
                Self::note_single_bit_clear(was_sole, &mut out);
                out.movements.push(DataMovement::FillFromMemory { cache });
                entry.holders.insert(cache);
                out
            }
            (true, true, true) => {
                let mut out = RefOutcome::event(EventKind::WhBlkDrty);
                out.movements.push(DataMovement::CacheWrite { cache });
                out
            }
            (true, true, false) => {
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(EventKind::WhBlkCln);
                out.clean_write_fanout = Some(remote.len() as u32);
                if remote.is_empty() {
                    // Single bit set: the write proceeds immediately; the
                    // directory is updated off the critical path, but the
                    // message still occupies the bus (§2).
                    out.ops.push(BusOp::DirUpdate);
                } else {
                    out.ops.push(BusOp::DirLookup);
                    out.ops
                        .extend(std::iter::repeat(BusOp::Invalidate).take(remote.len()));
                }
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.retain_only(cache);
                entry.dirty = true;
                out
            }
            (true, false, true) => {
                let owner = entry.holders.oldest().expect("dirty block has a holder");
                let mut out = RefOutcome::event(EventKind::WmBlkDrty);
                out.ops.push(BusOp::Invalidate);
                out.ops.push(BusOp::WriteBack);
                out.movements.push(DataMovement::WriteBack { cache: owner });
                out.movements.push(DataMovement::FillFromCache {
                    cache,
                    supplier: owner,
                });
                out.movements
                    .push(DataMovement::Invalidate { cache: owner });
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.clear();
                entry.holders.insert(cache);
                entry.dirty = true;
                out
            }
            (true, false, false) => {
                let remote: Vec<CacheId> = entry.holders.others(cache).collect();
                let mut out = RefOutcome::event(EventKind::WmBlkCln);
                out.clean_write_fanout = Some(remote.len() as u32);
                out.ops.push(BusOp::MemRead);
                out.ops
                    .extend(std::iter::repeat(BusOp::Invalidate).take(remote.len()));
                out.movements.push(DataMovement::FillFromMemory { cache });
                for victim in &remote {
                    out.movements
                        .push(DataMovement::Invalidate { cache: *victim });
                }
                out.movements.push(DataMovement::CacheWrite { cache });
                entry.holders.clear();
                entry.holders.insert(cache);
                entry.dirty = true;
                out
            }
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        let Some(entry) = self.blocks.get_mut(&block) else {
            return out;
        };
        if !entry.holders.contains(cache) {
            return out;
        }
        if entry.dirty {
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache });
            entry.dirty = false;
        }
        entry.holders.remove(cache);
        // Conservative single-bit handling: a survivor left as the sole
        // holder is not told its copy became exclusive (its bit stays
        // clear), costing later DirLookups instead of a message now.
        out.movements.push(DataMovement::Invalidate { cache });
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.iter().collect(),
            dirty: e.dirty,
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| BlockState::basic(block, e.holders.iter().collect(), e.dirty))
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks
            .get(&block)
            .map(|e| BlockState::basic(block, e.holders.iter().collect(), e.dirty))
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{DirSpec, DirectoryProtocol};

    const B: BlockAddr = BlockAddr::new(4);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn sole_holder_write_uses_async_update_not_lookup() {
        let mut p = YenFu::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(out.ops, vec![BusOp::DirUpdate]);
    }

    #[test]
    fn second_reader_clears_single_bit_with_a_message() {
        let mut p = YenFu::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.kind(), EventKind::RmBlkCln);
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::DirUpdate]);
        // A third reader does not: the block is already shared.
        let out = p.on_data_ref(c(2), B, false);
        assert_eq!(out.ops, vec![BusOp::MemRead]);
    }

    #[test]
    fn shared_clean_write_hit_behaves_like_dirn_nb() {
        let mut p = YenFu::new(4);
        p.on_data_ref(c(0), B, false);
        p.on_data_ref(c(1), B, false);
        p.on_data_ref(c(2), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(
            out.ops,
            vec![BusOp::DirLookup, BusOp::Invalidate, BusOp::Invalidate]
        );
    }

    #[test]
    fn events_match_dirn_nb_exactly() {
        // Same state-change model as the full map.
        let mut yenfu = YenFu::new(4);
        let mut dirn = DirectoryProtocol::new(DirSpec::dir_n_nb(), 4);
        let mut x: u64 = 21;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cache = c((x >> 33) as u32 % 4);
            let block = BlockAddr::new((x >> 13) % 8);
            let write = x % 3 == 0;
            let a = yenfu.on_data_ref(cache, block, write);
            let b = dirn.on_data_ref(cache, block, write);
            assert_eq!(a.kind(), b.kind());
        }
    }

    #[test]
    fn never_broadcasts() {
        let mut p = YenFu::new(4);
        let mut x: u64 = 5;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let out = p.on_data_ref(
                c((x >> 33) as u32 % 4),
                BlockAddr::new((x >> 13) % 6),
                x % 3 == 0,
            );
            assert!(!out.ops.contains(&BusOp::BroadcastInvalidate));
        }
    }

    #[test]
    fn dirty_miss_needs_no_single_bit_message() {
        let mut p = YenFu::new(4);
        p.on_data_ref(c(0), B, true); // cold write, dirty in 0
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.kind(), EventKind::RmBlkDrty);
        assert_eq!(out.ops, vec![BusOp::Invalidate, BusOp::WriteBack]);
    }

    #[test]
    fn name_and_counts() {
        let p = YenFu::new(8);
        assert_eq!(p.name(), "YenFu");
        assert_eq!(p.cache_count(), 8);
    }
}
