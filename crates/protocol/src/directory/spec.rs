//! The `Dir_i X` classification of directory schemes (§2 of the paper).
//!
//! A directory scheme is characterised by **`i`**, the number of cache
//! pointers each directory entry can store, and **`X ∈ {B, NB}`**, whether
//! the scheme may fall back to **B**roadcast invalidation when the pointers
//! overflow, or forbids broadcast (**NB**) by limiting the number of cached
//! copies to `i`.
//!
//! In this terminology (paper §2):
//! * Tang's and Censier–Feautrier's schemes are `Dir_n NB` (full map),
//! * Archibald–Baer's two-bit scheme is `Dir_0 B`,
//! * the single-copy scheme is `Dir_1 NB`,
//! * §6's one-pointer-plus-broadcast-bit scheme is `Dir_1 B`.
//!
//! `Dir_0 NB` "does not make sense, since there is no way to obtain
//! exclusive access" — [`DirSpec::new`] rejects it.

use std::fmt;

/// Number of cache pointers per directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointerCapacity {
    /// Exactly `i` pointers (`Dir_i …`).
    Limited(u32),
    /// One pointer per cache in the system — a full bit map
    /// (`Dir_n …`, Censier & Feautrier).
    Full,
}

impl PointerCapacity {
    /// Concrete pointer count given the system's cache count.
    pub fn resolve(self, caches: u32) -> u32 {
        match self {
            PointerCapacity::Limited(i) => i,
            PointerCapacity::Full => caches,
        }
    }
}

/// Victim selection when a no-broadcast scheme must shed a sharer to stay
/// within its pointer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Invalidate the longest-resident sharer (FIFO). Deterministic and the
    /// default.
    #[default]
    OldestSharer,
    /// Invalidate the most recently added sharer other than the requester.
    NewestSharer,
}

/// Error for directory specifications that make no sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// `Dir_0 NB`: with zero pointers and no broadcast there is no way to
    /// obtain exclusive access (paper §2).
    Dir0NbMeaningless,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Dir0NbMeaningless => write!(
                f,
                "Dir0NB does not make sense: no way to obtain exclusive access"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Specification of one point in the `Dir_i X` design space.
///
/// # Examples
///
/// ```
/// use dirsim_protocol::directory::{DirSpec, PointerCapacity};
///
/// assert_eq!(DirSpec::dir0_b().to_string(), "Dir0B");
/// assert_eq!(DirSpec::dir1_nb().to_string(), "Dir1NB");
/// assert_eq!(DirSpec::dir_n_nb().to_string(), "DirnNB");
/// let d4b = DirSpec::new(PointerCapacity::Limited(4), true).expect("valid");
/// assert_eq!(d4b.to_string(), "Dir4B");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirSpec {
    pointers: PointerCapacity,
    broadcast: bool,
    eviction: EvictionPolicy,
}

impl DirSpec {
    /// Creates a specification; rejects the meaningless `Dir0NB` point.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Dir0NbMeaningless`] for zero pointers without
    /// broadcast.
    pub fn new(pointers: PointerCapacity, broadcast: bool) -> Result<Self, SpecError> {
        if pointers == PointerCapacity::Limited(0) && !broadcast {
            return Err(SpecError::Dir0NbMeaningless);
        }
        Ok(DirSpec {
            pointers,
            broadcast,
            eviction: EvictionPolicy::default(),
        })
    }

    /// `Dir_0 B` — the Archibald–Baer two-bit scheme.
    pub fn dir0_b() -> Self {
        DirSpec::new(PointerCapacity::Limited(0), true).expect("Dir0B is valid")
    }

    /// `Dir_1 NB` — at most one cached copy of any block.
    pub fn dir1_nb() -> Self {
        DirSpec::new(PointerCapacity::Limited(1), false).expect("Dir1NB is valid")
    }

    /// `Dir_1 B` — one pointer plus a broadcast bit (§6).
    pub fn dir1_b() -> Self {
        DirSpec::new(PointerCapacity::Limited(1), true).expect("Dir1B is valid")
    }

    /// `Dir_n NB` — full-map directory with sequential invalidation
    /// (Censier & Feautrier, evaluated in §6).
    pub fn dir_n_nb() -> Self {
        DirSpec::new(PointerCapacity::Full, false).expect("DirnNB is valid")
    }

    /// `Dir_i NB` with `i ≥ 1` pointers.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Dir0NbMeaningless`] when `i == 0`.
    pub fn dir_i_nb(i: u32) -> Result<Self, SpecError> {
        DirSpec::new(PointerCapacity::Limited(i), false)
    }

    /// `Dir_i B` with `i` pointers and a broadcast bit.
    pub fn dir_i_b(i: u32) -> Self {
        DirSpec::new(PointerCapacity::Limited(i), true).expect("DiriB is valid")
    }

    /// Returns the same specification with a different eviction policy.
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Pointer capacity.
    pub fn pointers(self) -> PointerCapacity {
        self.pointers
    }

    /// Whether broadcast fallback is allowed (`B` vs `NB`).
    pub fn allows_broadcast(self) -> bool {
        self.broadcast
    }

    /// Eviction policy for no-broadcast pointer overflow.
    pub fn eviction(self) -> EvictionPolicy {
        self.eviction
    }

    /// Whether copies are capacity-limited (an `NB` scheme with limited
    /// pointers).
    pub fn limits_copies(self) -> bool {
        !self.broadcast && matches!(self.pointers, PointerCapacity::Limited(_))
    }

    /// Whether this is the single-copy `Dir1NB` scheme, whose clean write
    /// hits are free (exclusivity is guaranteed, so no directory
    /// notification is needed — the paper's Table 5 shows no unoverlapped
    /// directory accesses for `Dir1NB`).
    pub fn is_single_copy(self) -> bool {
        !self.broadcast && self.pointers == PointerCapacity::Limited(1)
    }
}

impl fmt::Display for DirSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suffix = if self.broadcast { "B" } else { "NB" };
        match self.pointers {
            PointerCapacity::Limited(i) => write!(f, "Dir{i}{suffix}"),
            PointerCapacity::Full => write!(f, "Dirn{suffix}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir0_nb_is_rejected() {
        assert_eq!(
            DirSpec::new(PointerCapacity::Limited(0), false),
            Err(SpecError::Dir0NbMeaningless)
        );
        assert_eq!(DirSpec::dir_i_nb(0), Err(SpecError::Dir0NbMeaningless));
        assert!(SpecError::Dir0NbMeaningless
            .to_string()
            .contains("exclusive access"));
    }

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(DirSpec::dir0_b().to_string(), "Dir0B");
        assert_eq!(DirSpec::dir1_nb().to_string(), "Dir1NB");
        assert_eq!(DirSpec::dir1_b().to_string(), "Dir1B");
        assert_eq!(DirSpec::dir_n_nb().to_string(), "DirnNB");
        assert_eq!(DirSpec::dir_i_b(3).to_string(), "Dir3B");
        assert_eq!(DirSpec::dir_i_nb(2).unwrap().to_string(), "Dir2NB");
        assert_eq!(
            DirSpec::new(PointerCapacity::Full, true)
                .unwrap()
                .to_string(),
            "DirnB"
        );
    }

    #[test]
    fn capacity_resolution() {
        assert_eq!(PointerCapacity::Limited(3).resolve(16), 3);
        assert_eq!(PointerCapacity::Full.resolve(16), 16);
    }

    #[test]
    fn limits_copies_only_for_limited_nb() {
        assert!(DirSpec::dir1_nb().limits_copies());
        assert!(DirSpec::dir_i_nb(4).unwrap().limits_copies());
        assert!(!DirSpec::dir_n_nb().limits_copies());
        assert!(!DirSpec::dir0_b().limits_copies());
        assert!(!DirSpec::dir1_b().limits_copies());
    }

    #[test]
    fn single_copy_detection() {
        assert!(DirSpec::dir1_nb().is_single_copy());
        assert!(!DirSpec::dir_i_nb(2).unwrap().is_single_copy());
        assert!(!DirSpec::dir1_b().is_single_copy());
    }

    #[test]
    fn eviction_policy_is_configurable() {
        let spec = DirSpec::dir1_nb().with_eviction(EvictionPolicy::NewestSharer);
        assert_eq!(spec.eviction(), EvictionPolicy::NewestSharer);
        assert_eq!(DirSpec::dir1_nb().eviction(), EvictionPolicy::OldestSharer);
    }
}
