//! The generic `Dir_i{B,NB}` directory protocol state machine.
//!
//! One machine covers the whole design space of §2/§3/§6:
//!
//! * `Dir1NB` — at most one copy; every remote miss invalidates (and flushes
//!   if dirty) the previous holder.
//! * `Dir0B` — Archibald–Baer: no pointers, broadcast invalidation, with the
//!   *block clean in exactly one cache* state that lets a sole holder's
//!   write hit skip the broadcast.
//! * `DirnNB` — Censier–Feautrier full map; invalidations are sequential
//!   directed messages, never broadcast.
//! * `Dir1B`, `DiriB` — limited pointers plus a broadcast bit set on
//!   pointer overflow; invalidations are directed while the pointers are
//!   exact and broadcast once the bit is set.
//! * `DiriNB` — limited pointers without broadcast: the (i+1)-th sharer
//!   evicts a victim copy, trading a slightly higher miss rate for never
//!   broadcasting.
//!
//! The state-change model is the classic multiple-readers/single-writer
//! policy: clean blocks may be cached many times (subject to `i` for NB
//! schemes), dirty blocks live in exactly one cache. The *event
//! frequencies* produced depend only on this model; the *bus operations*
//! depend on the directory organisation, which is exactly the paper's
//! event/cost split (§4.1).

use dirsim_mem::FxHashMap;

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{BlockProbe, BlockState, CoherenceProtocol, StateSnapshot};
#[cfg(test)]
use crate::directory::spec::PointerCapacity;
use crate::directory::spec::{DirSpec, EvictionPolicy};
use crate::event::EventKind;
use crate::ops::{BusOp, DataMovement, RefOutcome};
use crate::sharer_set::SharerSet;

#[derive(Debug, Clone, Default)]
struct Entry {
    /// Ground truth: caches holding a copy, in insertion order.
    holders: SharerSet,
    /// Dirty ⇒ exactly one holder (the writer).
    dirty: bool,
    /// Directory knowledge for broadcast schemes with limited pointers:
    /// the pointer slots currently in use (always a subset of `holders`).
    pointers: SharerSet,
    /// Broadcast bit: set when the pointers overflowed, so the directory
    /// no longer knows every holder.
    broadcast_bit: bool,
}

/// The `Dir_i{B,NB}` directory protocol (see module docs).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::directory::{DirSpec, DirectoryProtocol};
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_protocol::event::EventKind;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut dir0b = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
/// let b = BlockAddr::new(1);
/// let cold = dir0b.on_data_ref(CacheId::new(0), b, false);
/// assert_eq!(cold.kind(), EventKind::RmFirstRef);
/// let hit = dir0b.on_data_ref(CacheId::new(0), b, false);
/// assert_eq!(hit.kind(), EventKind::RdHit);
/// ```
#[derive(Debug, Clone)]
pub struct DirectoryProtocol {
    spec: DirSpec,
    caches: u32,
    blocks: FxHashMap<BlockAddr, Entry>,
    /// Strip unoverlapped directory lookups from the emitted ops — used by
    /// the Berkeley-ownership cost derivation (§5, "setting the directory
    /// access cost to 0").
    free_directory: bool,
}

impl DirectoryProtocol {
    /// Creates a directory protocol for `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(spec: DirSpec, caches: u32) -> Self {
        assert!(caches > 0, "a coherence system needs at least one cache");
        DirectoryProtocol {
            spec,
            caches,
            blocks: FxHashMap::default(),
            free_directory: false,
        }
    }

    /// The specification this machine implements.
    pub fn spec(&self) -> DirSpec {
        self.spec
    }

    /// Makes unoverlapped directory lookups free (Berkeley derivation).
    pub(crate) fn with_free_directory(mut self) -> Self {
        self.free_directory = true;
        self
    }

    fn pointer_capacity(&self) -> u32 {
        self.spec.pointers().resolve(self.caches)
    }

    /// Records `cache` in the directory's pointer knowledge after it
    /// obtained a clean copy.
    fn note_clean_holder(entry: &mut Entry, cache: CacheId, capacity: u32, broadcast: bool) {
        if !broadcast {
            // NB schemes: the directory always knows every holder; pointer
            // state is implicit in `holders`.
            return;
        }
        if entry.broadcast_bit {
            return;
        }
        if entry.pointers.contains(cache) {
            return;
        }
        if (entry.pointers.len() as u32) < capacity {
            entry.pointers.insert(cache);
        } else {
            entry.broadcast_bit = true;
        }
    }

    /// Resets directory knowledge to a single (dirty) holder.
    fn reset_to_sole_holder(entry: &mut Entry, cache: CacheId, capacity: u32) {
        entry.pointers.clear();
        if capacity >= 1 {
            entry.pointers.insert(cache);
        }
        entry.broadcast_bit = false;
    }

    /// Emits invalidation ops for the remote clean holders in `remote`.
    ///
    /// NB schemes send one directed message per holder (sequential
    /// invalidation, §6). Broadcast schemes send directed messages while the
    /// pointer knowledge is exact and a single broadcast otherwise.
    fn clean_invalidation_ops(
        spec: DirSpec,
        entry: &Entry,
        ops: &mut Vec<BusOp>,
        remote: &[CacheId],
    ) {
        if remote.is_empty() {
            return;
        }
        if !spec.allows_broadcast() {
            ops.extend(std::iter::repeat(BusOp::Invalidate).take(remote.len()));
            return;
        }
        let exact_knowledge =
            !entry.broadcast_bit && remote.iter().all(|c| entry.pointers.contains(*c));
        if exact_knowledge {
            ops.extend(std::iter::repeat(BusOp::Invalidate).take(remote.len()));
        } else {
            ops.push(BusOp::BroadcastInvalidate);
        }
    }

    fn on_read(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let capacity = self.pointer_capacity();
        let broadcast = self.spec.allows_broadcast();
        let Some(entry) = self.blocks.get_mut(&block) else {
            // Cold miss: install and exclude from cost (§4).
            let mut entry = Entry::default();
            entry.holders.insert(cache);
            Self::note_clean_holder(&mut entry, cache, capacity, broadcast);
            self.blocks.insert(block, entry);
            let mut out = RefOutcome::event(EventKind::RmFirstRef);
            out.movements.push(DataMovement::FillFromMemory { cache });
            return out;
        };

        if entry.holders.contains(cache) {
            return RefOutcome::event(EventKind::RdHit);
        }

        let spec = self.spec;
        let mut out;
        let mut just_flushed = None;
        if entry.dirty {
            // Dirty in exactly one other cache: the directory sends a
            // combined write-back/ownership-downgrade request; the flush
            // supplies the requester off the bus (§4.3).
            let owner = entry.holders.oldest().expect("dirty block has a holder");
            out = RefOutcome::event(EventKind::RmBlkDrty);
            out.ops.push(BusOp::Invalidate); // the write-back request
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache: owner });
            out.movements.push(DataMovement::FillFromCache {
                cache,
                supplier: owner,
            });
            entry.dirty = false;
            entry.holders.insert(cache);
            just_flushed = Some(owner);
            // Directory knowledge: owner keeps a clean copy, requester joins.
            Self::note_clean_holder(entry, owner, capacity, broadcast);
            Self::note_clean_holder(entry, cache, capacity, broadcast);
        } else {
            // Clean elsewhere (or only in memory): memory supplies; the
            // directory access overlaps the memory access (§4.3).
            out = RefOutcome::event(EventKind::RmBlkCln);
            out.ops.push(BusOp::MemRead);
            out.movements.push(DataMovement::FillFromMemory { cache });
            entry.holders.insert(cache);
            Self::note_clean_holder(entry, cache, capacity, broadcast);
        }

        Self::enforce_capacity(
            spec,
            capacity,
            entry,
            cache,
            just_flushed,
            &mut out.ops,
            &mut out.movements,
        );
        out
    }

    /// Enforces the copy limit of `DiriNB` schemes after `keep` joined the
    /// sharers: evicts victims until the holder count fits the pointers.
    ///
    /// `just_flushed` marks a cache whose flush request already carried the
    /// invalidation (a dirty holder asked to write back and invalidate in
    /// one message), so its eviction costs no extra bus operation.
    fn enforce_capacity(
        spec: DirSpec,
        capacity: u32,
        entry: &mut Entry,
        keep: CacheId,
        just_flushed: Option<CacheId>,
        ops: &mut Vec<BusOp>,
        movements: &mut Vec<DataMovement>,
    ) {
        if !spec.limits_copies() {
            return;
        }
        let capacity = capacity.max(1) as usize;
        while entry.holders.len() > capacity {
            let victim = match spec.eviction() {
                EvictionPolicy::OldestSharer => entry.holders.oldest_other(keep),
                EvictionPolicy::NewestSharer => {
                    let mut others: Vec<CacheId> = entry.holders.others(keep).collect();
                    others.pop()
                }
            }
            .expect("over-capacity set has a non-keep member");
            entry.holders.remove(victim);
            movements.push(DataMovement::Invalidate { cache: victim });
            if just_flushed != Some(victim) {
                ops.push(BusOp::Invalidate);
            }
        }
    }

    fn on_write(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let capacity = self.pointer_capacity();
        let spec = self.spec;
        let free_directory = self.free_directory;
        let Some(entry) = self.blocks.get_mut(&block) else {
            // Cold write miss: install dirty, excluded from cost.
            let mut entry = Entry::default();
            entry.holders.insert(cache);
            entry.dirty = true;
            Self::reset_to_sole_holder(&mut entry, cache, capacity);
            self.blocks.insert(block, entry);
            let mut out = RefOutcome::event(EventKind::WmFirstRef);
            out.movements.push(DataMovement::FillFromMemory { cache });
            out.movements.push(DataMovement::CacheWrite { cache });
            return out;
        };

        if entry.holders.contains(cache) {
            if entry.dirty {
                // Already dirty in this cache: the write is local (§2,
                // Tang: "the write can proceed immediately").
                let mut out = RefOutcome::event(EventKind::WhBlkDrty);
                out.movements.push(DataMovement::CacheWrite { cache });
                return out;
            }
            // Write hit to a clean block.
            let remote: Vec<CacheId> = entry.holders.others(cache).collect();
            let mut out = RefOutcome::event(EventKind::WhBlkCln);
            out.clean_write_fanout = Some(remote.len() as u32);
            // Dir1NB guarantees exclusivity, so the write is free; every
            // other scheme must query the directory before invalidating,
            // and that lookup cannot overlap a memory access (§4.3).
            if !spec.is_single_copy() && !free_directory {
                out.ops.push(BusOp::DirLookup);
            }
            Self::clean_invalidation_ops(spec, entry, &mut out.ops, &remote);
            for victim in &remote {
                out.movements
                    .push(DataMovement::Invalidate { cache: *victim });
            }
            out.movements.push(DataMovement::CacheWrite { cache });
            entry.holders.retain_only(cache);
            entry.dirty = true;
            Self::reset_to_sole_holder(entry, cache, capacity);
            return out;
        }

        // Write miss.
        if entry.dirty {
            let owner = entry.holders.oldest().expect("dirty block has a holder");
            let mut out = RefOutcome::event(EventKind::WmBlkDrty);
            // Combined flush-and-invalidate request, then the flush itself;
            // the requester snarfs the data.
            out.ops.push(BusOp::Invalidate);
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache: owner });
            out.movements.push(DataMovement::FillFromCache {
                cache,
                supplier: owner,
            });
            out.movements
                .push(DataMovement::Invalidate { cache: owner });
            out.movements.push(DataMovement::CacheWrite { cache });
            entry.holders.clear();
            entry.holders.insert(cache);
            entry.dirty = true;
            Self::reset_to_sole_holder(entry, cache, capacity);
            out
        } else {
            let remote: Vec<CacheId> = entry.holders.others(cache).collect();
            let mut out = RefOutcome::event(EventKind::WmBlkCln);
            out.clean_write_fanout = Some(remote.len() as u32);
            out.ops.push(BusOp::MemRead); // directory overlapped with memory
            Self::clean_invalidation_ops(spec, entry, &mut out.ops, &remote);
            out.movements.push(DataMovement::FillFromMemory { cache });
            for victim in &remote {
                out.movements
                    .push(DataMovement::Invalidate { cache: *victim });
            }
            out.movements.push(DataMovement::CacheWrite { cache });
            entry.holders.clear();
            entry.holders.insert(cache);
            entry.dirty = true;
            Self::reset_to_sole_holder(entry, cache, capacity);
            out
        }
    }

    /// Canonical [`BlockState`] of one entry. The pointer set is directory
    /// knowledge only for broadcast schemes; NB schemes consult holders
    /// directly and may leave the field stale, so exporting it would split
    /// behaviourally equivalent states.
    fn entry_state(&self, block: BlockAddr, e: &Entry) -> BlockState {
        let broadcast = self.spec.allows_broadcast();
        BlockState {
            block,
            holders: e.holders.iter().collect(),
            dirty: e.dirty,
            pointers: if broadcast {
                e.pointers.iter().collect()
            } else {
                Vec::new()
            },
            broadcast_bit: broadcast && e.broadcast_bit,
            aux: Vec::new(),
        }
    }
}

impl CoherenceProtocol for DirectoryProtocol {
    fn name(&self) -> String {
        if self.free_directory {
            format!("{}-freedir", self.spec)
        } else {
            self.spec.to_string()
        }
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        debug_assert!(
            (cache.index() as u32) < self.caches,
            "cache {cache} out of range for {} caches",
            self.caches
        );
        if write {
            self.on_write(cache, block)
        } else {
            self.on_read(cache, block)
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        let Some(entry) = self.blocks.get_mut(&block) else {
            return out;
        };
        if !entry.holders.contains(cache) {
            return out;
        }
        if entry.dirty {
            // The sole dirty holder flushes before dropping its copy.
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache });
            entry.dirty = false;
        }
        entry.holders.remove(cache);
        // Replacement hint: the directory's pointer knowledge stays exact.
        entry.pointers.remove(cache);
        out.movements.push(DataMovement::Invalidate { cache });
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.iter().collect(),
            dirty: e.dirty,
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| self.entry_state(block, e))
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks.get(&block).map(|e| self.entry_state(block, e))
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr::new(42);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    fn read(p: &mut DirectoryProtocol, i: u32) -> RefOutcome {
        p.on_data_ref(c(i), B, false)
    }

    fn write(p: &mut DirectoryProtocol, i: u32) -> RefOutcome {
        p.on_data_ref(c(i), B, true)
    }

    // ---------- cold misses ----------

    #[test]
    fn cold_read_is_first_ref_with_no_ops() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        let out = read(&mut p, 0);
        assert_eq!(out.kind(), EventKind::RmFirstRef);
        assert!(out.ops.is_empty(), "cold misses are excluded from cost");
        assert_eq!(
            out.movements,
            vec![DataMovement::FillFromMemory { cache: c(0) }]
        );
    }

    #[test]
    fn cold_write_is_first_ref_and_dirty() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        let out = write(&mut p, 1);
        assert_eq!(out.kind(), EventKind::WmFirstRef);
        assert!(out.ops.is_empty());
        let probe = p.probe(B).unwrap();
        assert!(probe.dirty);
        assert_eq!(probe.holders, vec![c(1)]);
    }

    // ---------- hits ----------

    #[test]
    fn read_hit_is_free() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        read(&mut p, 0);
        let out = read(&mut p, 0);
        assert_eq!(out.kind(), EventKind::RdHit);
        assert!(out.ops.is_empty());
        assert!(out.movements.is_empty());
    }

    #[test]
    fn dirty_write_hit_is_free() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        write(&mut p, 0);
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkDrty);
        assert!(out.ops.is_empty());
    }

    // ---------- Dir0B specifics ----------

    #[test]
    fn dir0b_clean_write_hit_sole_holder_skips_broadcast() {
        // The "block clean in exactly one cache" state (§2).
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        read(&mut p, 0);
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(out.clean_write_fanout, Some(0));
        assert_eq!(out.ops, vec![BusOp::DirLookup]);
    }

    #[test]
    fn dir0b_clean_write_hit_shared_broadcasts() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        read(&mut p, 2);
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(out.clean_write_fanout, Some(2));
        assert_eq!(out.ops, vec![BusOp::DirLookup, BusOp::BroadcastInvalidate]);
        let probe = p.probe(B).unwrap();
        assert_eq!(probe.holders, vec![c(0)]);
        assert!(probe.dirty);
    }

    #[test]
    fn dir0b_read_miss_to_dirty_block_flushes() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        write(&mut p, 0);
        let out = read(&mut p, 1);
        assert_eq!(out.kind(), EventKind::RmBlkDrty);
        assert_eq!(out.ops, vec![BusOp::Invalidate, BusOp::WriteBack]);
        // Previous owner keeps a clean copy; requester snarfs the data.
        let probe = p.probe(B).unwrap();
        assert!(!probe.dirty);
        assert_eq!(probe.holders, vec![c(0), c(1)]);
    }

    #[test]
    fn dir0b_write_miss_to_dirty_block_flushes_and_invalidates() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        write(&mut p, 0);
        let out = write(&mut p, 1);
        assert_eq!(out.kind(), EventKind::WmBlkDrty);
        assert_eq!(out.ops, vec![BusOp::Invalidate, BusOp::WriteBack]);
        let probe = p.probe(B).unwrap();
        assert!(probe.dirty);
        assert_eq!(probe.holders, vec![c(1)]);
    }

    #[test]
    fn dir0b_write_miss_to_clean_shared_block() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        let out = write(&mut p, 2);
        assert_eq!(out.kind(), EventKind::WmBlkCln);
        assert_eq!(out.clean_write_fanout, Some(2));
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::BroadcastInvalidate]);
        let probe = p.probe(B).unwrap();
        assert_eq!(probe.holders, vec![c(2)]);
        assert!(probe.dirty);
    }

    // ---------- Dir1NB specifics ----------

    #[test]
    fn dir1nb_allows_only_one_copy() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_nb(), 4);
        read(&mut p, 0);
        let out = read(&mut p, 1);
        assert_eq!(out.kind(), EventKind::RmBlkCln);
        // Memory supplies, previous holder invalidated.
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::Invalidate]);
        let probe = p.probe(B).unwrap();
        assert_eq!(probe.holders, vec![c(1)]);
    }

    #[test]
    fn dir1nb_dirty_read_miss_flush_covers_invalidation() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_nb(), 4);
        write(&mut p, 0);
        let out = read(&mut p, 1);
        assert_eq!(out.kind(), EventKind::RmBlkDrty);
        // One request + write-back; the flushed holder's eviction costs no
        // extra bus op because the request already carried it.
        assert_eq!(out.ops, vec![BusOp::Invalidate, BusOp::WriteBack]);
        assert!(out
            .movements
            .contains(&DataMovement::Invalidate { cache: c(0) }));
        let probe = p.probe(B).unwrap();
        assert_eq!(probe.holders, vec![c(1)]);
        assert!(!probe.dirty);
    }

    #[test]
    fn dir1nb_clean_write_hit_is_totally_free() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_nb(), 4);
        read(&mut p, 0);
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert!(out.ops.is_empty(), "Dir1NB guarantees exclusivity");
        assert_eq!(out.clean_write_fanout, Some(0));
    }

    // ---------- DirnNB (full map, sequential invalidation) ----------

    #[test]
    fn dirn_nb_sequentially_invalidates_all_sharers() {
        let mut p = DirectoryProtocol::new(DirSpec::dir_n_nb(), 8);
        for i in 0..5 {
            read(&mut p, i);
        }
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(out.clean_write_fanout, Some(4));
        let invs = out.ops.iter().filter(|&&o| o == BusOp::Invalidate).count();
        assert_eq!(invs, 4, "one directed invalidate per remote sharer");
        assert!(!out.ops.contains(&BusOp::BroadcastInvalidate));
        assert!(out.ops.contains(&BusOp::DirLookup));
    }

    #[test]
    fn dirn_nb_never_limits_copies() {
        let mut p = DirectoryProtocol::new(DirSpec::dir_n_nb(), 8);
        for i in 0..8 {
            read(&mut p, i);
        }
        assert_eq!(p.probe(B).unwrap().holders.len(), 8);
    }

    // ---------- Dir1B (one pointer + broadcast bit, §6) ----------

    #[test]
    fn dir1b_single_sharer_uses_directed_invalidate() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_b(), 4);
        read(&mut p, 0);
        let out = write(&mut p, 1); // write miss; one remote clean holder
        assert_eq!(out.kind(), EventKind::WmBlkCln);
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::Invalidate]);
    }

    #[test]
    fn dir1b_overflow_sets_broadcast_bit() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_b(), 4);
        read(&mut p, 0);
        read(&mut p, 1); // second sharer overflows the single pointer
        let out = write(&mut p, 2);
        assert_eq!(out.kind(), EventKind::WmBlkCln);
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::BroadcastInvalidate]);
    }

    #[test]
    fn dir1b_pointer_resets_after_write() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_b(), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        write(&mut p, 2); // broadcast; now dirty in 2 with pointer reset
        read(&mut p, 3); // flush; holders {2, 3}; pointer had {2}, add 3 → overflow
        let out = write(&mut p, 2);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        // Pointer knowledge overflowed again (two clean holders, one slot).
        assert!(out.ops.contains(&BusOp::BroadcastInvalidate));
    }

    #[test]
    fn dir2b_exactly_i_pointers_stays_directed() {
        // The boundary below overflow: with exactly i = 2 sharers the
        // directory knowledge is exact, so invalidation is directed.
        let mut p = DirectoryProtocol::new(DirSpec::dir_i_b(2), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        let state = p.block_state(B).unwrap();
        assert_eq!(state.pointers, vec![c(0), c(1)]);
        assert!(!state.broadcast_bit);
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(
            out.ops.iter().filter(|&&o| o == BusOp::Invalidate).count(),
            1,
            "one directed invalidate for the one known remote sharer"
        );
        assert!(!out.ops.contains(&BusOp::BroadcastInvalidate));
    }

    #[test]
    fn dir2b_one_sharer_past_i_trips_broadcast() {
        // The boundary itself: the (i+1)-th sharer overflows the pointers,
        // and the next write must fall back to a broadcast that reaches
        // *every* sharer — including the one the directory forgot.
        let mut p = DirectoryProtocol::new(DirSpec::dir_i_b(2), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        read(&mut p, 2); // one more than i
        let state = p.block_state(B).unwrap();
        assert!(state.broadcast_bit, "pointer overflow must set the bit");
        assert_eq!(state.pointers, vec![c(0), c(1)], "slots keep the first i");
        assert_eq!(state.holders.len(), 3);

        let out = write(&mut p, 3);
        assert!(out.ops.contains(&BusOp::BroadcastInvalidate));
        let invalidated = out
            .movements
            .iter()
            .filter(|m| matches!(m, DataMovement::Invalidate { .. }))
            .count();
        assert_eq!(invalidated, 3, "broadcast reaches every sharer");
        let after = p.block_state(B).unwrap();
        assert_eq!(after.holders, vec![c(3)]);
        assert!(after.dirty);
        assert_eq!(after.pointers, vec![c(3)], "knowledge reset to the writer");
        assert!(!after.broadcast_bit);
    }

    // ---------- DiriNB (limited copies) ----------

    #[test]
    fn dir2nb_eviction_path_keeps_directory_exact() {
        // NB schemes never broadcast, so the directory must track holders
        // exactly through the eviction: the snapshot exports no stale
        // pointer knowledge and the evictee is truly gone.
        let mut p = DirectoryProtocol::new(DirSpec::dir_i_nb(2).unwrap(), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        let at_capacity = p.block_state(B).unwrap();
        assert_eq!(at_capacity.holders, vec![c(0), c(1)], "no premature evict");

        let out = read(&mut p, 2);
        assert!(out
            .movements
            .contains(&DataMovement::Invalidate { cache: c(0) }));
        let state = p.block_state(B).unwrap();
        assert_eq!(state.holders, vec![c(1), c(2)]);
        assert!(!state.dirty);
        assert!(state.pointers.is_empty(), "holders are the NB knowledge");
        assert!(!state.broadcast_bit);
    }

    #[test]
    fn dir2nb_evicts_oldest_sharer_on_third_copy() {
        let mut p = DirectoryProtocol::new(DirSpec::dir_i_nb(2).unwrap(), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        let out = read(&mut p, 2);
        assert_eq!(out.kind(), EventKind::RmBlkCln);
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::Invalidate]);
        let probe = p.probe(B).unwrap();
        assert_eq!(probe.holders, vec![c(1), c(2)], "oldest (cache 0) evicted");
    }

    #[test]
    fn dir2nb_newest_policy_evicts_most_recent() {
        let spec = DirSpec::dir_i_nb(2)
            .unwrap()
            .with_eviction(EvictionPolicy::NewestSharer);
        let mut p = DirectoryProtocol::new(spec, 4);
        read(&mut p, 0);
        read(&mut p, 1);
        read(&mut p, 2);
        let probe = p.probe(B).unwrap();
        assert_eq!(probe.holders, vec![c(0), c(2)], "newest other (1) evicted");
    }

    #[test]
    fn dir2nb_clean_write_hit_invalidates_sequentially() {
        let mut p = DirectoryProtocol::new(DirSpec::dir_i_nb(2).unwrap(), 4);
        read(&mut p, 0);
        read(&mut p, 1);
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(out.ops, vec![BusOp::DirLookup, BusOp::Invalidate]);
    }

    // ---------- invariants ----------

    #[test]
    fn dirty_implies_sole_holder_always() {
        let specs = [
            DirSpec::dir0_b(),
            DirSpec::dir1_nb(),
            DirSpec::dir1_b(),
            DirSpec::dir_n_nb(),
            DirSpec::dir_i_nb(2).unwrap(),
            DirSpec::dir_i_b(2),
        ];
        for spec in specs {
            let mut p = DirectoryProtocol::new(spec, 4);
            // Pseudo-random access pattern over a few blocks.
            let mut x: u64 = 12345;
            for _ in 0..2000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let cache = c((x >> 33) as u32 % 4);
                let block = BlockAddr::new((x >> 16) % 8);
                let write = x % 3 == 0;
                p.on_data_ref(cache, block, write);
                if let Some(probe) = p.probe(block) {
                    if probe.dirty {
                        assert_eq!(probe.holders.len(), 1, "{spec}: dirty ⇒ one holder");
                    }
                    assert!(!probe.holders.is_empty(), "{spec}: known block has holders");
                }
            }
        }
    }

    #[test]
    fn nb_limited_never_exceeds_capacity_and_never_broadcasts() {
        for i in 1..=3u32 {
            let mut p = DirectoryProtocol::new(DirSpec::dir_i_nb(i).unwrap(), 6);
            let mut x: u64 = 999;
            for _ in 0..3000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let cache = c((x >> 33) as u32 % 6);
                let block = BlockAddr::new((x >> 13) % 5);
                let write = x % 4 == 0;
                let out = p.on_data_ref(cache, block, write);
                assert!(
                    !out.ops.contains(&BusOp::BroadcastInvalidate),
                    "Dir{i}NB must never broadcast"
                );
                let probe = p.probe(block).unwrap();
                assert!(
                    probe.holders.len() <= i as usize,
                    "Dir{i}NB exceeded its copy limit: {:?}",
                    probe.holders
                );
            }
        }
    }

    // ---------- B-scheme pointer bookkeeping edge cases ----------

    #[test]
    fn dir1b_dirty_read_miss_tracks_both_holders_knowledge() {
        // After a flush the old owner stays a holder; with one pointer the
        // directory can only remember one of the two — the next clean-write
        // invalidation must therefore broadcast.
        let mut p = DirectoryProtocol::new(DirSpec::dir1_b(), 4);
        write(&mut p, 0); // dirty in 0, pointer {0}
        read(&mut p, 1); // flush; holders {0,1}, pointer overflows
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert!(
            out.ops.contains(&BusOp::BroadcastInvalidate),
            "one pointer cannot name both clean holders: {:?}",
            out.ops
        );
    }

    #[test]
    fn dir2b_dirty_read_miss_stays_exact() {
        // Two pointers cover both holders after a flush: invalidation stays
        // directed.
        let mut p = DirectoryProtocol::new(DirSpec::dir_i_b(2), 4);
        write(&mut p, 0);
        read(&mut p, 1);
        let out = write(&mut p, 0);
        assert_eq!(out.kind(), EventKind::WhBlkCln);
        assert_eq!(out.ops, vec![BusOp::DirLookup, BusOp::Invalidate]);
    }

    #[test]
    fn broadcast_bit_clears_after_any_write() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_b(), 4);
        for i in 0..3 {
            read(&mut p, i);
        }
        // Overflowed: the write broadcasts...
        let out = write(&mut p, 0);
        assert!(out.ops.contains(&BusOp::BroadcastInvalidate));
        // ...and resets the pointer to the writer, so the very next remote
        // write miss is directed again.
        let out = write(&mut p, 1);
        assert_eq!(out.kind(), EventKind::WmBlkDrty);
        assert_eq!(out.ops, vec![BusOp::Invalidate, BusOp::WriteBack]);
        read(&mut p, 2); // holders {1, 2}: pointer {1} + overflow on 2
        let out = write(&mut p, 1);
        assert!(out.ops.contains(&BusOp::BroadcastInvalidate));
    }

    #[test]
    fn eviction_keeps_pointer_knowledge_exact() {
        // A replacement hint removes the cache from both holders and
        // pointers, so a Dir1B slot frees up for the next sharer.
        let mut p = DirectoryProtocol::new(DirSpec::dir1_b(), 4);
        read(&mut p, 0); // pointer {0}
        p.evict(c(0), B);
        read(&mut p, 1); // slot free again: pointer {1}, no broadcast bit
        let out = write(&mut p, 2);
        assert_eq!(out.kind(), EventKind::WmBlkCln);
        assert_eq!(
            out.ops,
            vec![BusOp::MemRead, BusOp::Invalidate],
            "directed invalidate proves the pointer stayed exact"
        );
    }

    #[test]
    fn rereading_same_cache_does_not_consume_pointer_slots() {
        let mut p = DirectoryProtocol::new(DirSpec::dir1_b(), 4);
        read(&mut p, 0);
        // Hits by the same cache must not overflow the single pointer.
        for _ in 0..5 {
            read(&mut p, 0);
        }
        let out = write(&mut p, 1);
        assert_eq!(out.ops, vec![BusOp::MemRead, BusOp::Invalidate]);
    }

    #[test]
    fn dirn_b_is_equivalent_to_dirn_nb() {
        // With a full pointer set the broadcast bit can never be set, so
        // DirnB degenerates to DirnNB operation for operation.
        let spec_b = DirSpec::new(PointerCapacity::Full, true).unwrap();
        let mut a = DirectoryProtocol::new(spec_b, 4);
        let mut b = DirectoryProtocol::new(DirSpec::dir_n_nb(), 4);
        let mut x: u64 = 77;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cache = c((x >> 33) as u32 % 4);
            let block = BlockAddr::new((x >> 13) % 8);
            let write = x % 3 == 0;
            let oa = a.on_data_ref(cache, block, write);
            let ob = b.on_data_ref(cache, block, write);
            assert_eq!(oa.kind(), ob.kind());
            assert_eq!(oa.ops, ob.ops);
        }
    }

    #[test]
    fn name_reflects_spec() {
        assert_eq!(DirectoryProtocol::new(DirSpec::dir0_b(), 4).name(), "Dir0B");
        assert_eq!(
            DirectoryProtocol::new(DirSpec::dir_n_nb(), 4).name(),
            "DirnNB"
        );
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_caches_rejected() {
        let _ = DirectoryProtocol::new(DirSpec::dir0_b(), 0);
    }

    #[test]
    fn tracked_blocks_counts_distinct() {
        let mut p = DirectoryProtocol::new(DirSpec::dir0_b(), 4);
        p.on_data_ref(c(0), BlockAddr::new(1), false);
        p.on_data_ref(c(0), BlockAddr::new(2), true);
        p.on_data_ref(c(1), BlockAddr::new(1), false);
        assert_eq!(p.tracked_blocks(), 2);
    }
}
