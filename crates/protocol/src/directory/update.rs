//! A directory-based *update* protocol — the fourth quadrant.
//!
//! The paper evaluates snoopy-invalidate (WTI), snoopy-update (Dragon),
//! and directory-invalidate (the `Dir_i X` family). [`DirUpdate`] fills in
//! the remaining combination: Dragon's state-change model (no
//! invalidations, writes refresh remote copies) driven by a full-map
//! directory, so each update is a *directed* word message to the sharers
//! named by the map instead of a bus broadcast. On a bus it prices like
//! Dragon with per-sharer updates; on a network (see
//! `dirsim_cost::network`) it keeps Dragon's low data traffic while
//! shedding the snoopy flooding requirement — the update-protocol
//! counterpart of the paper's directory argument.

use dirsim_mem::FxHashMap;

use dirsim_mem::{BlockAddr, CacheId};

use crate::api::{
    permute_basic, BlockProbe, BlockState, CoherenceProtocol, ProtocolStyle, StateSnapshot,
};
use crate::event::EventKind;
use crate::ops::{BusOp, DataMovement, RefOutcome};
use crate::sharer_set::SharerSet;

#[derive(Debug, Clone, Default)]
struct Entry {
    holders: SharerSet,
    /// Cache that performed the latest write while memory is stale.
    owner: Option<CacheId>,
}

/// Full-map directory with update-based writes (see module docs).
///
/// # Examples
///
/// ```
/// use dirsim_protocol::directory::DirUpdate;
/// use dirsim_protocol::api::CoherenceProtocol;
/// use dirsim_protocol::ops::BusOp;
/// use dirsim_mem::{BlockAddr, CacheId};
///
/// let mut p = DirUpdate::new(4);
/// let b = BlockAddr::new(0);
/// p.on_data_ref(CacheId::new(0), b, false);
/// p.on_data_ref(CacheId::new(1), b, false);
/// p.on_data_ref(CacheId::new(2), b, false);
/// // A write sends one directed update per remote sharer:
/// let w = p.on_data_ref(CacheId::new(0), b, true);
/// let updates = w.ops.iter().filter(|&&o| o == BusOp::WriteUpdate).count();
/// assert_eq!(updates, 2);
/// ```
#[derive(Debug, Clone)]
pub struct DirUpdate {
    caches: u32,
    blocks: FxHashMap<BlockAddr, Entry>,
}

impl DirUpdate {
    /// Creates the protocol for `caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches == 0`.
    pub fn new(caches: u32) -> Self {
        assert!(caches > 0, "a coherence system needs at least one cache");
        DirUpdate {
            caches,
            blocks: FxHashMap::default(),
        }
    }

    /// Canonical [`BlockState`] of one entry. The owner identity rides in
    /// `aux[0]` as index + 1 (0 = memory current): which cache supplies
    /// and writes back matters, not just that one exists.
    fn entry_state(block: BlockAddr, e: &Entry) -> BlockState {
        BlockState {
            block,
            holders: e.holders.iter().collect(),
            dirty: e.owner.is_some(),
            pointers: Vec::new(),
            broadcast_bit: false,
            aux: vec![e.owner.map_or(0, |c| c.index() as u64 + 1)],
        }
    }
}

impl CoherenceProtocol for DirUpdate {
    fn name(&self) -> String {
        "DirUpd".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let Some(entry) = self.blocks.get_mut(&block) else {
            let mut entry = Entry::default();
            entry.holders.insert(cache);
            entry.owner = write.then_some(cache);
            self.blocks.insert(block, entry);
            let kind = if write {
                EventKind::WmFirstRef
            } else {
                EventKind::RmFirstRef
            };
            let mut out = RefOutcome::event(kind);
            out.movements.push(DataMovement::FillFromMemory { cache });
            if write {
                out.movements.push(DataMovement::CacheWrite { cache });
            }
            return out;
        };

        let holds = entry.holders.contains(cache);
        match (write, holds) {
            (false, true) => RefOutcome::event(EventKind::RdHit),
            (false, false) => {
                let mut out;
                if let Some(owner) = entry.owner {
                    // Memory stale: the directory names the owner, which
                    // supplies the block directly.
                    out = RefOutcome::event(EventKind::RmBlkDrty);
                    out.ops.push(BusOp::CacheSupply);
                    out.movements.push(DataMovement::FillFromCache {
                        cache,
                        supplier: owner,
                    });
                } else {
                    out = RefOutcome::event(EventKind::RmBlkCln);
                    out.ops.push(BusOp::MemRead);
                    out.movements.push(DataMovement::FillFromMemory { cache });
                }
                entry.holders.insert(cache);
                out
            }
            (true, holds) => {
                if !holds {
                    // Write miss: fetch, then update the existing sharers
                    // with directed messages.
                    let mut out;
                    if let Some(owner) = entry.owner {
                        out = RefOutcome::event(EventKind::WmBlkDrty);
                        out.ops.push(BusOp::CacheSupply);
                        out.movements.push(DataMovement::FillFromCache {
                            cache,
                            supplier: owner,
                        });
                    } else {
                        out = RefOutcome::event(EventKind::WmBlkCln);
                        out.ops.push(BusOp::MemRead);
                        out.movements.push(DataMovement::FillFromMemory { cache });
                    }
                    entry.holders.insert(cache);
                    let remote = entry.holders.count_others(cache);
                    out.ops
                        .extend(std::iter::repeat(BusOp::WriteUpdate).take(remote));
                    out.movements.push(DataMovement::WriteUpdate { cache });
                    entry.owner = Some(cache);
                    return out;
                }
                // Write hit: the directory knows exactly who shares.
                let remote = entry.holders.count_others(cache);
                if remote > 0 {
                    let mut out = RefOutcome::event(EventKind::WhDistrib);
                    out.ops
                        .extend(std::iter::repeat(BusOp::WriteUpdate).take(remote));
                    out.movements.push(DataMovement::WriteUpdate { cache });
                    entry.owner = Some(cache);
                    out
                } else {
                    // Sole holder: like Dir1NB's free write, the map
                    // guarantees exclusivity — no bus operation at all.
                    let mut out = RefOutcome::event(EventKind::WhLocal);
                    out.movements.push(DataMovement::CacheWrite { cache });
                    entry.owner = Some(cache);
                    out
                }
            }
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        let Some(entry) = self.blocks.get_mut(&block) else {
            return out;
        };
        if !entry.holders.contains(cache) {
            return out;
        }
        if entry.owner == Some(cache) {
            out.ops.push(BusOp::WriteBack);
            out.movements.push(DataMovement::WriteBack { cache });
            entry.owner = None;
        }
        entry.holders.remove(cache);
        out.movements.push(DataMovement::Invalidate { cache });
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.iter().collect(),
            dirty: e.owner.is_some(),
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn style(&self) -> ProtocolStyle {
        ProtocolStyle::Update
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| Self::entry_state(block, e))
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks.get(&block).map(|e| Self::entry_state(block, e))
    }

    fn permute_block_state(&self, state: &BlockState, perm: &[u32]) -> BlockState {
        let mut permuted = permute_basic(state, perm);
        // `aux[0]` carries the owner identity as index + 1 (0 = no owner).
        if let Some(a) = permuted.aux.first_mut() {
            if *a > 0 {
                *a = perm[(*a - 1) as usize] as u64 + 1;
            }
        }
        permuted
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snoopy::Dragon;

    const B: BlockAddr = BlockAddr::new(6);

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn events_match_dragon_exactly() {
        // Same state-change model as the snoopy update protocol.
        let mut diru = DirUpdate::new(4);
        let mut dragon = Dragon::new(4);
        let mut x: u64 = 11;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cache = c((x >> 33) as u32 % 4);
            let block = BlockAddr::new((x >> 13) % 8);
            let write = x % 3 == 0;
            let a = diru.on_data_ref(cache, block, write);
            let b = dragon.on_data_ref(cache, block, write);
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.movements, b.movements);
        }
    }

    #[test]
    fn updates_are_directed_per_sharer() {
        let mut p = DirUpdate::new(4);
        for i in 0..4 {
            p.on_data_ref(c(i), B, false);
        }
        let out = p.on_data_ref(c(1), B, true);
        assert_eq!(out.kind(), EventKind::WhDistrib);
        let updates = out.ops.iter().filter(|&&o| o == BusOp::WriteUpdate).count();
        assert_eq!(updates, 3, "one directed update per remote sharer");
    }

    #[test]
    fn sole_holder_write_is_free() {
        let mut p = DirUpdate::new(4);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(0), B, true);
        assert_eq!(out.kind(), EventKind::WhLocal);
        assert!(out.ops.is_empty(), "full map guarantees exclusivity");
    }

    #[test]
    fn never_invalidates() {
        let mut p = DirUpdate::new(4);
        let mut x: u64 = 17;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let out = p.on_data_ref(
                c((x >> 33) as u32 % 4),
                BlockAddr::new((x >> 13) % 6),
                x % 3 == 0,
            );
            assert!(!out.ops.contains(&BusOp::Invalidate));
            assert!(!out.ops.contains(&BusOp::BroadcastInvalidate));
        }
    }

    #[test]
    fn eviction_flushes_owner() {
        let mut p = DirUpdate::new(4);
        p.on_data_ref(c(0), B, true);
        let out = p.evict(c(0), B);
        assert_eq!(out.ops, vec![BusOp::WriteBack]);
        assert!(p.probe(B).unwrap().holders.is_empty());
        // A non-owner eviction is silent.
        p.on_data_ref(c(1), B, false);
        p.on_data_ref(c(2), B, false);
        let out = p.evict(c(2), B);
        assert!(out.ops.is_empty());
    }

    #[test]
    fn name_is_dir_upd() {
        assert_eq!(DirUpdate::new(2).name(), "DirUpd");
    }
}
