//! Property tests for the protocol crate: SharerSet model checking,
//! coarse-code algebra, directory naming, and cross-protocol structural
//! identities on random streams.

use std::collections::BTreeSet;

use proptest::prelude::*;

use dirsim_mem::{BlockAddr, CacheId};
use dirsim_protocol::directory::{CoarseCode, DirSpec, PointerCapacity};
use dirsim_protocol::sharer_set::{INLINE_MEMBERS, WORD_BITS};
use dirsim_protocol::{EventKind, Scheme, SharerSet};

#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u32),
    Remove(u32),
    RetainOnly(u32),
    Clear,
}

fn set_ops(len: usize) -> impl Strategy<Value = Vec<SetOp>> {
    prop::collection::vec(
        (0..4u8, 0..16u32).prop_map(|(kind, c)| match kind {
            0 => SetOp::Insert(c),
            1 => SetOp::Remove(c),
            2 => SetOp::RetainOnly(c),
            _ => SetOp::Clear,
        }),
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SharerSet behaves like an insertion-ordered Vec-with-set-semantics.
    #[test]
    fn sharer_set_matches_vec_model(ops in set_ops(200)) {
        let mut real = SharerSet::new();
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                SetOp::Insert(c) => {
                    let added = real.insert(CacheId::new(c));
                    let model_added = !model.contains(&c);
                    if model_added {
                        model.push(c);
                    }
                    prop_assert_eq!(added, model_added);
                }
                SetOp::Remove(c) => {
                    let removed = real.remove(CacheId::new(c));
                    let model_removed = model.iter().position(|&x| x == c).map(|i| {
                        model.remove(i);
                    });
                    prop_assert_eq!(removed, model_removed.is_some());
                }
                SetOp::RetainOnly(c) => {
                    real.retain_only(CacheId::new(c));
                    model.retain(|&x| x == c);
                }
                SetOp::Clear => {
                    real.clear();
                    model.clear();
                }
            }
            let real_order: Vec<u32> =
                real.iter().map(|c| c.index() as u32).collect();
            prop_assert_eq!(&real_order, &model);
            prop_assert_eq!(real.len(), model.len());
            prop_assert_eq!(
                real.oldest().map(|c| c.index() as u32),
                model.first().copied()
            );
        }
    }

    /// The packed-word representation agrees with a `BTreeSet` membership
    /// model across the 64→spill boundary: candidate ids straddle
    /// `WORD_BITS` (inline word vs. heap spill words) and exceed
    /// `INLINE_MEMBERS` (inline order buffer vs. heap promotion), so every
    /// storage transition is crossed mid-sequence. The `BTreeSet` checks
    /// membership/cardinality; a `Vec` shadow checks the insertion-order
    /// contract the pointer-replacement policies depend on.
    #[test]
    fn sharer_set_matches_btree_model_across_spill_boundary(
        ops in prop::collection::vec((0..4u8, 0..20usize), 1..250)
    ) {
        // Low ids, ids hugging both sides of the word boundary, and ids
        // deep in the second spill word.
        let ids: Vec<u32> = (0..6)
            .chain(WORD_BITS - 3..WORD_BITS + 3)
            .chain(2 * WORD_BITS + 1..2 * WORD_BITS + 9)
            .collect();
        prop_assert!(ids.len() == 20 && ids.len() > INLINE_MEMBERS);
        let mut real = SharerSet::new();
        let mut membership: BTreeSet<u32> = BTreeSet::new();
        let mut order: Vec<u32> = Vec::new();
        for (kind, pick) in ops {
            let id = ids[pick];
            match kind {
                0 => {
                    let added = real.insert(CacheId::new(id));
                    prop_assert_eq!(added, membership.insert(id));
                    if added {
                        order.push(id);
                    }
                }
                1 => {
                    let removed = real.remove(CacheId::new(id));
                    prop_assert_eq!(removed, membership.remove(&id));
                    order.retain(|&x| x != id);
                }
                2 => {
                    real.retain_only(CacheId::new(id));
                    let keep = membership.contains(&id);
                    membership.clear();
                    order.clear();
                    if keep {
                        membership.insert(id);
                        order.push(id);
                    }
                }
                _ => {
                    real.clear();
                    membership.clear();
                    order.clear();
                }
            }
            prop_assert_eq!(real.len(), membership.len());
            prop_assert_eq!(real.is_empty(), membership.is_empty());
            for &candidate in &ids {
                prop_assert_eq!(
                    real.contains(CacheId::new(candidate)),
                    membership.contains(&candidate),
                    "membership diverged at id {}",
                    candidate
                );
                prop_assert_eq!(
                    real.count_others(CacheId::new(candidate)),
                    membership.len()
                        - usize::from(membership.contains(&candidate))
                );
            }
            let real_order: Vec<u32> =
                real.iter().map(|c| c.index() as u32).collect();
            prop_assert_eq!(&real_order, &order);
            prop_assert_eq!(
                real.oldest().map(|c| c.index() as u32),
                order.first().copied()
            );
        }
    }

    /// The coarse code's superset size matches its member enumeration over
    /// the full digit space.
    #[test]
    fn coarse_code_member_count_matches_superset(
        caches_log in 1u32..6,
        inserts in prop::collection::vec(0u64..64, 1..15),
    ) {
        let caches = 1u32 << caches_log; // power of two: members == superset
        let mut code = CoarseCode::new(caches);
        for &i in &inserts {
            code.insert(i % u64::from(caches));
        }
        let members = code.members(caches);
        prop_assert_eq!(members.len() as u64, code.superset_size());
        // Members are sorted and unique.
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(members, sorted);
    }

    /// DirSpec display names are parseable back into (i, broadcast).
    #[test]
    fn dir_spec_names_are_faithful(i in 0u32..100, broadcast in any::<bool>()) {
        let Ok(spec) = DirSpec::new(PointerCapacity::Limited(i), broadcast) else {
            prop_assert!(i == 0 && !broadcast, "only Dir0NB is rejected");
            return Ok(());
        };
        let name = spec.to_string();
        let suffix = if broadcast { "B" } else { "NB" };
        prop_assert_eq!(name, format!("Dir{i}{suffix}"));
    }

    /// Every scheme classifies a deterministic stream deterministically
    /// (two instances agree event-by-event).
    #[test]
    fn protocols_are_deterministic(
        raw in prop::collection::vec((0u32..4, 0u64..10, any::<bool>()), 1..200)
    ) {
        for scheme in [
            Scheme::Directory(DirSpec::dir0_b()),
            Scheme::Directory(DirSpec::dir1_nb()),
            Scheme::Tang,
            Scheme::YenFu,
            Scheme::CoarseVector,
            Scheme::Wti,
            Scheme::Dragon,
            Scheme::Berkeley,
        ] {
            let mut a = scheme.build(4);
            let mut b = scheme.build(4);
            for &(c, blk, w) in &raw {
                let oa = a.on_data_ref(CacheId::new(c), BlockAddr::new(blk), w);
                let ob = b.on_data_ref(CacheId::new(c), BlockAddr::new(blk), w);
                prop_assert_eq!(&oa, &ob, "{} diverged", scheme);
            }
        }
    }

    /// A read immediately after any reference by the same cache is a hit,
    /// for every invalidation scheme (the copy was just installed).
    #[test]
    fn own_reference_installs_a_copy(
        raw in prop::collection::vec((0u32..4, 0u64..10, any::<bool>()), 1..150)
    ) {
        for scheme in [
            Scheme::Directory(DirSpec::dir0_b()),
            Scheme::Directory(DirSpec::dir_n_nb()),
            Scheme::Tang,
            Scheme::YenFu,
            Scheme::Wti,
            Scheme::Dragon,
        ] {
            let mut p = scheme.build(4);
            for &(c, blk, w) in &raw {
                let cache = CacheId::new(c);
                let block = BlockAddr::new(blk);
                p.on_data_ref(cache, block, w);
                let probe = p.probe(block).unwrap();
                prop_assert!(
                    probe.holders.contains(&cache),
                    "{}: cache lost its own copy",
                    scheme
                );
            }
        }
    }

    /// Tang and DirnNB differ only in DirLookup multiplicity.
    #[test]
    fn tang_is_dirn_nb_with_scaled_lookups(
        raw in prop::collection::vec((0u32..4, 0u64..8, any::<bool>()), 1..200)
    ) {
        use dirsim_protocol::BusOp;
        let mut tang = Scheme::Tang.build(4);
        let mut dirn = Scheme::Directory(DirSpec::dir_n_nb()).build(4);
        for &(c, blk, w) in &raw {
            let a = tang.on_data_ref(CacheId::new(c), BlockAddr::new(blk), w);
            let b = dirn.on_data_ref(CacheId::new(c), BlockAddr::new(blk), w);
            let count = |ops: &[BusOp], op: BusOp| ops.iter().filter(|&&o| o == op).count();
            prop_assert_eq!(
                count(&a.ops, BusOp::DirLookup),
                4 * count(&b.ops, BusOp::DirLookup)
            );
            let strip = |ops: &[BusOp]| -> Vec<BusOp> {
                ops.iter().copied().filter(|&o| o != BusOp::DirLookup).collect()
            };
            prop_assert_eq!(strip(&a.ops), strip(&b.ops));
        }
    }

    /// Eviction then re-reference behaves like a (non-cold) miss.
    #[test]
    fn evict_then_reread_misses(
        scheme_pick in 0usize..6,
        blk in 0u64..8,
    ) {
        let schemes = [
            Scheme::Directory(DirSpec::dir0_b()),
            Scheme::Directory(DirSpec::dir_n_nb()),
            Scheme::Tang,
            Scheme::YenFu,
            Scheme::Wti,
            Scheme::Dragon,
        ];
        let scheme = schemes[scheme_pick];
        let mut p = scheme.build(4);
        let cache = CacheId::new(0);
        let block = BlockAddr::new(blk);
        p.on_data_ref(cache, block, false); // cold
        p.evict(cache, block);
        let probe = p.probe(block).unwrap();
        prop_assert!(!probe.holders.contains(&cache));
        let out = p.on_data_ref(cache, block, false);
        prop_assert_ne!(out.kind(), EventKind::RdHit, "{}", scheme);
        prop_assert_ne!(out.kind(), EventKind::RmFirstRef, "{}", scheme);
    }
}
