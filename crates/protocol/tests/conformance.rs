//! Protocol conformance: classic sharing scenarios with the exact event
//! sequence each scheme must produce, transition by transition. This is
//! the table-driven specification of the state-change models of §2/§3.

use dirsim_mem::{BlockAddr, CacheId};
use dirsim_protocol::{EventKind, Scheme};

use EventKind::*;

/// Runs `accesses` (cache index, is-write) against `scheme` over one block
/// and returns the classified events.
fn events_for(scheme: Scheme, accesses: &[(u32, bool)]) -> Vec<EventKind> {
    let mut protocol = scheme.build(4);
    let block = BlockAddr::new(1);
    accesses
        .iter()
        .map(|&(c, w)| protocol.on_data_ref(CacheId::new(c), block, w).kind())
        .collect()
}

fn scheme(name: &str) -> Scheme {
    name.parse().unwrap_or_else(|e| panic!("{e}"))
}

/// Asserts one scenario row.
fn check(scheme_name: &str, accesses: &[(u32, bool)], expected: &[EventKind]) {
    let got = events_for(scheme(scheme_name), accesses);
    assert_eq!(
        got, expected,
        "{scheme_name} on {accesses:?}: got {got:?}, expected {expected:?}"
    );
}

const R: bool = false;
const W: bool = true;

#[test]
fn private_reuse_is_free_everywhere() {
    // One cache reads then writes repeatedly: after the cold miss,
    // everything stays local (the first write transitions clean→dirty).
    let accesses = [(0, R), (0, R), (0, W), (0, W), (0, R)];
    for s in [
        "Dir1NB",
        "DirnNB",
        "Dir0B",
        "Tang",
        "YenFu",
        "CoarseVector",
        "WTI",
        "Illinois",
        "Berkeley",
    ] {
        check(
            s,
            &accesses,
            &[RmFirstRef, RdHit, WhBlkCln, WhBlkDrty, RdHit],
        );
    }
    // Dragon uses the update-protocol classification for write hits.
    check(
        "Dragon",
        &accesses,
        &[RmFirstRef, RdHit, WhLocal, WhLocal, RdHit],
    );
}

#[test]
fn read_sharing_scenario() {
    // Three readers then a write by the first.
    let accesses = [(0, R), (1, R), (2, R), (0, W)];
    // Multi-copy invalidation schemes: both later readers get clean misses,
    // the write is a hit to a clean (shared) block.
    for s in [
        "Dir0B",
        "DirnNB",
        "Tang",
        "YenFu",
        "CoarseVector",
        "WTI",
        "Illinois",
        "Berkeley",
    ] {
        check(s, &accesses, &[RmFirstRef, RmBlkCln, RmBlkCln, WhBlkCln]);
    }
    // Dragon never invalidates: the write hit is distributed.
    check(
        "Dragon",
        &accesses,
        &[RmFirstRef, RmBlkCln, RmBlkCln, WhDistrib],
    );
    // Dir1NB bounces the single copy: cache 0 lost its copy to cache 2,
    // so its "write" is a miss to a clean block.
    check(
        "Dir1NB",
        &accesses,
        &[RmFirstRef, RmBlkCln, RmBlkCln, WmBlkCln],
    );
}

#[test]
fn migratory_ping_pong_scenario() {
    // Two caches alternate read-modify-write.
    let accesses = [(0, R), (0, W), (1, R), (1, W), (0, R), (0, W)];
    for s in [
        "Dir0B",
        "DirnNB",
        "Tang",
        "YenFu",
        "CoarseVector",
        "Dir1NB",
        "WTI",
        "Illinois",
        "Berkeley",
    ] {
        check(
            s,
            &accesses,
            &[
                RmFirstRef, WhBlkCln, RmBlkDrty, WhBlkCln, RmBlkDrty, WhBlkCln,
            ],
        );
    }
    // Dragon: the handoff reads are supplied by the previous owner; the
    // writes update the (still cached) stale copies.
    check(
        "Dragon",
        &accesses,
        &[RmFirstRef, WhLocal, RmBlkDrty, WhDistrib, RdHit, WhDistrib],
    );
}

#[test]
fn write_write_conflict_scenario() {
    // Two caches write alternately with no reads at all.
    let accesses = [(0, W), (1, W), (0, W), (1, W)];
    for s in [
        "Dir0B",
        "DirnNB",
        "Tang",
        "YenFu",
        "CoarseVector",
        "Dir1NB",
        "WTI",
        "Illinois",
        "Berkeley",
    ] {
        check(s, &accesses, &[WmFirstRef, WmBlkDrty, WmBlkDrty, WmBlkDrty]);
    }
    // Dragon: the second writer fetches from the owner and updates; after
    // that both hold copies forever, so later writes are distributed hits.
    check(
        "Dragon",
        &accesses,
        &[WmFirstRef, WmBlkDrty, WhDistrib, WhDistrib],
    );
}

#[test]
fn dirty_read_then_silent_reader_scenario() {
    // A writer, then two readers; the block is flushed exactly once.
    let accesses = [(0, W), (1, R), (2, R), (0, R)];
    for s in [
        "Dir0B",
        "DirnNB",
        "Tang",
        "YenFu",
        "CoarseVector",
        "WTI",
        "Illinois",
        "Berkeley",
    ] {
        check(s, &accesses, &[WmFirstRef, RmBlkDrty, RmBlkCln, RdHit]);
    }
    // Dragon: the owner keeps supplying (memory stays stale).
    check(
        "Dragon",
        &accesses,
        &[WmFirstRef, RmBlkDrty, RmBlkDrty, RdHit],
    );
    // Dir1NB: every reader steals the single copy; the final read by the
    // original writer misses on a now-clean block.
    check(
        "Dir1NB",
        &accesses,
        &[WmFirstRef, RmBlkDrty, RmBlkCln, RmBlkCln],
    );
}

#[test]
fn spin_lock_shape_scenario() {
    // The §5.2 pathology in miniature: cache 1 polls while cache 0 holds.
    // Under Dir0B the polls hit after one fill; under Dir1NB every poll
    // alternating with the holder's accesses would bounce — here cache 1
    // polls alone, so even Dir1NB settles.
    let polls = [(0, W), (1, R), (1, R), (1, R), (1, R)];
    check(
        "Dir0B",
        &polls,
        &[WmFirstRef, RmBlkDrty, RdHit, RdHit, RdHit],
    );
    check(
        "Dir1NB",
        &polls,
        &[WmFirstRef, RmBlkDrty, RdHit, RdHit, RdHit],
    );
    // Two alternating pollers under Dir1NB never stop missing:
    let duel = [(0, R), (1, R), (0, R), (1, R), (0, R)];
    check(
        "Dir1NB",
        &duel,
        &[RmFirstRef, RmBlkCln, RmBlkCln, RmBlkCln, RmBlkCln],
    );
    // ...while Dir0B lets them all hit:
    check("Dir0B", &duel, &[RmFirstRef, RmBlkCln, RdHit, RdHit, RdHit]);
}

#[test]
fn dir_update_matches_dragon_everywhere() {
    // The directory update protocol shares Dragon's state-change model,
    // scenario by scenario.
    let scenarios: Vec<Vec<(u32, bool)>> = vec![
        vec![(0, R), (0, R), (0, W), (0, W), (0, R)],
        vec![(0, R), (1, R), (2, R), (0, W)],
        vec![(0, R), (0, W), (1, R), (1, W), (0, R), (0, W)],
        vec![(0, W), (1, W), (0, W), (1, W)],
        vec![(0, W), (1, R), (2, R), (0, R)],
    ];
    for accesses in scenarios {
        assert_eq!(
            events_for(scheme("DirUpd"), &accesses),
            events_for(scheme("Dragon"), &accesses),
            "{accesses:?}"
        );
    }
}

#[test]
fn berkeley_and_illinois_track_dir0b_events() {
    // Both ownership protocols share the basic state-change model; only
    // their bus operations differ (§5's point about references [5], [7]).
    let scenarios: Vec<Vec<(u32, bool)>> = vec![
        vec![(0, R), (1, W), (0, R), (1, R), (2, W)],
        vec![(3, W), (3, W), (2, R), (3, R), (2, W), (2, W)],
        vec![(0, R), (1, R), (2, R), (3, R), (0, W), (1, R)],
    ];
    for accesses in scenarios {
        let reference = events_for(scheme("Dir0B"), &accesses);
        assert_eq!(events_for(scheme("Berkeley"), &accesses), reference);
        assert_eq!(events_for(scheme("Illinois"), &accesses), reference);
    }
}

#[test]
fn pointer_limited_schemes_diverge_only_past_their_capacity() {
    // Up to i sharers, DiriNB behaves exactly like the full map; the
    // (i+1)-th sharer forces an eviction that later shows up as a miss.
    let accesses = [(0, R), (1, R), (0, R)];
    // Two sharers fit in Dir2NB: identical to DirnNB.
    assert_eq!(
        events_for(scheme("Dir2NB"), &accesses),
        events_for(scheme("DirnNB"), &accesses),
    );
    // A third sharer evicts the oldest under Dir2NB...
    let over = [(0, R), (1, R), (2, R), (0, R)];
    assert_eq!(
        events_for(scheme("Dir2NB"), &over),
        vec![RmFirstRef, RmBlkCln, RmBlkCln, RmBlkCln],
        "cache 0 was evicted and must re-miss"
    );
    // ...while the full map keeps all three.
    assert_eq!(
        events_for(scheme("DirnNB"), &over),
        vec![RmFirstRef, RmBlkCln, RmBlkCln, RdHit],
    );
}

#[test]
fn wti_matches_dir0b_on_every_scenario() {
    // The §5 identity, spot-checked over many short scenarios.
    let scenarios: Vec<Vec<(u32, bool)>> = vec![
        vec![(0, R), (1, W), (0, R), (1, R), (2, W)],
        vec![(3, W), (3, W), (2, R), (3, R), (2, W), (2, W)],
        vec![(0, R), (1, R), (2, R), (3, R), (0, W), (1, R)],
    ];
    for accesses in scenarios {
        assert_eq!(
            events_for(scheme("WTI"), &accesses),
            events_for(scheme("Dir0B"), &accesses),
            "{accesses:?}"
        );
    }
}
