//! Grid cells and their stable identity.
//!
//! A [`Cell`] is one point of the evaluation grid: a scheme over a
//! workload at a geometry and CPU count, simulated for a fixed number of
//! references. Its identity is an FNV-1a 64-bit hash of the *full*
//! configuration — including the scenario's canonical spec text
//! ([`Scenario::to_spec`]), so editing a `.scn` file changes the hash and
//! the cell re-runs, while re-running an unchanged spec finds every hash
//! already in the store. Cells over external trace files
//! ([`CellInput::Trace`]) hash the trace path plus its byte length in
//! place of the spec text — rewriting the file re-runs its cells under
//! the same cheap-to-check rule.
//!
//! A [`CellRecord`] is the stored result. It deliberately carries both
//! cost pricings (pipelined and non-pipelined cycles per reference) plus
//! the raw counts: the paper's §4 separation of event frequencies from
//! event costs means one simulation run answers every pricing question,
//! so `cost-models` in the spec only selects report columns and never
//! forces a re-run. It also deliberately omits wall-clock time, so an
//! identical cell always serialises to identical bytes — that is what
//! makes "resumed store equals from-scratch store" testable.

use dirsim_mem::CacheGeometry;
use dirsim_obs::{json::float, Json};
use dirsim_protocol::Scheme;
use dirsim_trace::synth::WorkloadConfig;
use dirsim_trace::Scenario;

/// Identity-format version; bump to force a whole-grid re-run.
pub const CELL_IDENTITY_VERSION: u32 = 1;

/// What a cell simulates: a synthetic workload regenerated from its
/// scenario seed, or an external trace file streamed through the
/// frontend registry at run time.
#[derive(Debug, Clone)]
pub enum CellInput {
    /// Synthetic workload (CPU override already applied).
    Synthetic(WorkloadConfig),
    /// External trace/corpus file.
    Trace {
        /// Path as the spec wrote it.
        path: String,
        /// Byte length at spec-parse time; part of the identity hash.
        len: u64,
    },
}

/// One point of the evaluation grid, ready to run.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Coherence scheme.
    pub scheme: Scheme,
    /// Scenario display name (the trace path for trace cells).
    pub scenario: String,
    /// The reference stream to simulate.
    pub input: CellInput,
    /// Cache geometry; `None` is the paper's infinite cache.
    pub geometry: Option<CacheGeometry>,
    /// CPU-count override from the spec; `None` kept the scenario default.
    pub cpus: Option<u16>,
    /// References to simulate.
    pub refs: usize,
    /// Stable identity hash (16 hex digits).
    pub hash: String,
}

impl Cell {
    /// Builds a cell and computes its identity hash.
    pub fn new(
        scheme: Scheme,
        scenario: &Scenario,
        config: WorkloadConfig,
        geometry: Option<CacheGeometry>,
        cpus: Option<u16>,
        refs: usize,
    ) -> Cell {
        let identity = format!(
            "dirsim-sweep-cell-v{CELL_IDENTITY_VERSION}\nscheme={}\nscenario={}\nspec={}\ngeometry={}\ncpus={}\nrefs={}\n",
            scheme.name(),
            scenario.name(),
            scenario.to_spec(),
            geometry_label(geometry),
            cpus_label(cpus),
            refs,
        );
        Cell {
            scheme,
            scenario: scenario.name().to_string(),
            input: CellInput::Synthetic(config),
            geometry,
            cpus,
            refs,
            hash: format!("{:016x}", fnv1a64(identity.as_bytes())),
        }
    }

    /// Builds a cell over an external trace file and computes its
    /// identity hash. The hash covers the trace path *and* its byte
    /// length: rewriting the file re-runs its cells (the length is a
    /// cheap content heuristic — a same-length edit needs a store
    /// delete), while two axis entries naming different paths are
    /// different cells by construction.
    pub fn from_trace(
        scheme: Scheme,
        path: &str,
        len: u64,
        geometry: Option<CacheGeometry>,
        cpus: Option<u16>,
        refs: usize,
    ) -> Cell {
        let identity = format!(
            "dirsim-sweep-cell-v{CELL_IDENTITY_VERSION}\nscheme={}\nscenario={path}\nspec=trace:{path}?len={len}\ngeometry={}\ncpus={}\nrefs={}\n",
            scheme.name(),
            geometry_label(geometry),
            cpus_label(cpus),
            refs,
        );
        Cell {
            scheme,
            scenario: path.to_string(),
            input: CellInput::Trace {
                path: path.to_string(),
                len,
            },
            geometry,
            cpus,
            refs,
            hash: format!("{:016x}", fnv1a64(identity.as_bytes())),
        }
    }

    /// The geometry as a spec label (`infinite` or `SETSxWAYS`).
    pub fn geometry_label(&self) -> String {
        geometry_label(self.geometry)
    }
}

/// Renders a geometry the way sweep specs write it.
pub fn geometry_label(geometry: Option<CacheGeometry>) -> String {
    match geometry {
        None => "infinite".to_string(),
        Some(g) => format!("{}x{}", g.sets, g.ways),
    }
}

/// Renders a CPU override the way sweep specs write it.
pub fn cpus_label(cpus: Option<u16>) -> String {
    match cpus {
        None => "default".to_string(),
        Some(n) => n.to_string(),
    }
}

/// FNV-1a, 64 bit: tiny, dependency-free, and stable across platforms —
/// exactly what a store key needs (this is an identity, not a defence
/// against adversarial collisions).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// One completed cell, as stored.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's identity hash.
    pub hash: String,
    /// Scheme name (paper notation).
    pub scheme: String,
    /// Scenario display name.
    pub scenario: String,
    /// Geometry label (`infinite` or `SETSxWAYS`).
    pub geometry: String,
    /// Resolved CPU count the cell ran with.
    pub cpus: u32,
    /// References processed.
    pub refs: u64,
    /// References that caused at least one bus operation.
    pub transactions: u64,
    /// Distinct blocks touched (= cold misses).
    pub distinct_blocks: u64,
    /// Capacity replacements (finite-geometry cells only).
    pub evictions: u64,
    /// Data-miss rate.
    pub miss_rate: f64,
    /// Bus cycles per reference under the pipelined bus (Table 5 pricing).
    pub pipelined_cpr: f64,
    /// Bus cycles per reference under the non-pipelined bus (Table 6).
    pub non_pipelined_cpr: f64,
}

impl CellRecord {
    /// Cycles per reference under the given pricing.
    pub fn cycles_per_ref(&self, model: crate::spec::CostModelKind) -> f64 {
        match model {
            crate::spec::CostModelKind::Pipelined => self.pipelined_cpr,
            crate::spec::CostModelKind::NonPipelined => self.non_pipelined_cpr,
        }
    }

    /// Serialises to the store's JSON record body.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("record".to_string(), Json::Str("cell".to_string())),
            ("hash".to_string(), Json::Str(self.hash.clone())),
            ("scheme".to_string(), Json::Str(self.scheme.clone())),
            ("scenario".to_string(), Json::Str(self.scenario.clone())),
            ("geometry".to_string(), Json::Str(self.geometry.clone())),
            ("cpus".to_string(), Json::Int(i128::from(self.cpus))),
            ("refs".to_string(), Json::Int(i128::from(self.refs))),
            (
                "transactions".to_string(),
                Json::Int(i128::from(self.transactions)),
            ),
            (
                "distinct_blocks".to_string(),
                Json::Int(i128::from(self.distinct_blocks)),
            ),
            (
                "evictions".to_string(),
                Json::Int(i128::from(self.evictions)),
            ),
            ("miss_rate".to_string(), float(self.miss_rate)),
            ("pipelined_cpr".to_string(), float(self.pipelined_cpr)),
            (
                "non_pipelined_cpr".to_string(),
                float(self.non_pipelined_cpr),
            ),
        ])
    }

    /// Parses a store record body.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<CellRecord, String> {
        let text = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell record lacks string `{key}`"))
        };
        let count = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cell record lacks count `{key}`"))
        };
        let rate = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cell record lacks number `{key}`"))
        };
        Ok(CellRecord {
            hash: text("hash")?,
            scheme: text("scheme")?,
            scenario: text("scenario")?,
            geometry: text("geometry")?,
            cpus: {
                let cpus = count("cpus")?;
                u32::try_from(cpus).map_err(|_| format!("cpus {cpus} out of range"))?
            },
            refs: count("refs")?,
            transactions: count("transactions")?,
            distinct_blocks: count("distinct_blocks")?,
            evictions: count("evictions")?,
            miss_rate: rate("miss_rate")?,
            pipelined_cpr: rate("pipelined_cpr")?,
            non_pipelined_cpr: rate("non_pipelined_cpr")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scheme: Scheme, cpus: Option<u16>, refs: usize) -> Cell {
        let scenario = Scenario::named("pops").unwrap();
        Cell::new(
            scheme,
            scenario,
            scenario.config().clone(),
            None,
            cpus,
            refs,
        )
    }

    #[test]
    fn identity_is_stable_and_axis_sensitive() {
        let base = cell(Scheme::dir0_b(), None, 1000);
        assert_eq!(base.hash, cell(Scheme::dir0_b(), None, 1000).hash);
        assert_eq!(base.hash.len(), 16);
        assert_ne!(base.hash, cell(Scheme::Wti, None, 1000).hash);
        assert_ne!(base.hash, cell(Scheme::dir0_b(), Some(8), 1000).hash);
        assert_ne!(base.hash, cell(Scheme::dir0_b(), None, 2000).hash);

        let scenario = Scenario::named("pops").unwrap();
        let finite = Cell::new(
            Scheme::dir0_b(),
            scenario,
            scenario.config().clone(),
            Some(CacheGeometry { sets: 64, ways: 4 }),
            None,
            1000,
        );
        assert_ne!(base.hash, finite.hash);
        assert_eq!(finite.geometry_label(), "64x4");

        let other = Scenario::named("thor").unwrap();
        let thor = Cell::new(
            Scheme::dir0_b(),
            other,
            other.config().clone(),
            None,
            None,
            1000,
        );
        assert_ne!(base.hash, thor.hash);
    }

    #[test]
    fn trace_identity_covers_path_length_and_axes() {
        let base = Cell::from_trace(Scheme::dir0_b(), "a.dtr", 160, None, None, 1000);
        assert_eq!(
            base.hash,
            Cell::from_trace(Scheme::dir0_b(), "a.dtr", 160, None, None, 1000).hash
        );
        assert_eq!(base.scenario, "a.dtr");
        assert!(matches!(base.input, CellInput::Trace { ref path, len: 160 } if path == "a.dtr"));
        // A rewritten file (new length), a different path, and a different
        // scheme are all different cells.
        assert_ne!(
            base.hash,
            Cell::from_trace(Scheme::dir0_b(), "a.dtr", 176, None, None, 1000).hash
        );
        assert_ne!(
            base.hash,
            Cell::from_trace(Scheme::dir0_b(), "b.dtr", 160, None, None, 1000).hash
        );
        assert_ne!(
            base.hash,
            Cell::from_trace(Scheme::Wti, "a.dtr", 160, None, None, 1000).hash
        );
        // And a trace cell never collides with a synthetic one.
        assert_ne!(base.hash, cell(Scheme::dir0_b(), None, 1000).hash);
    }

    #[test]
    fn record_roundtrips_through_json() {
        let record = CellRecord {
            hash: "00ff00ff00ff00ff".to_string(),
            scheme: "Dir1NB".to_string(),
            scenario: "pops".to_string(),
            geometry: "infinite".to_string(),
            cpus: 4,
            refs: 2000,
            transactions: 137,
            distinct_blocks: 44,
            evictions: 0,
            miss_rate: 0.0625,
            pipelined_cpr: 0.3531,
            non_pipelined_cpr: 0.7062,
        };
        let json = record.to_json();
        assert_eq!(json.get("record").and_then(Json::as_str), Some("cell"));
        let back = CellRecord::from_json(&Json::parse(&json.to_string_compact()).unwrap()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn record_parse_names_the_missing_field() {
        let err =
            CellRecord::from_json(&Json::parse("{\"record\":\"cell\"}").unwrap()).unwrap_err();
        assert!(err.contains("hash"), "{err}");
    }
}
