//! # dirsim-sweep
//!
//! Resumable orchestrator for the paper's evaluation grid.
//!
//! The paper's results are a *grid*: every scheme (§3) crossed with every
//! workload (§4) at a handful of cache geometries, each point summarised as
//! bus cycles per memory reference (Tables 5–7). Reproducing that grid from
//! one-off `simulate` invocations is error-prone — a killed run loses
//! everything, and the tables in EXPERIMENTS.md drift from the commands that
//! produced them. This crate makes the grid itself the unit of work:
//!
//! * [`spec`] — a declarative `.sweep` file names the axes (schemes,
//!   scenarios, geometries, CPU counts, reference budgets); the cross
//!   product is the cell list.
//! * [`cell`] — each cell has a stable FNV-1a identity hash over its full
//!   configuration, so "already done" is a property of the store, not of
//!   the process that ran it.
//! * [`store`] — an append-only JSON-lines store, flushed per record and
//!   repaired on open (a killed writer's torn final line is truncated away).
//!   Re-running a spec skips every cell whose hash is already stored.
//! * [`run`] — a worker pool of pipelined engines drains the pending cells
//!   and streams each result to the store as it completes, with live
//!   progress (cells done/total, aggregate refs/sec, ETA).
//! * [`report`] — regenerates the paper tables (bus cycles per reference,
//!   scheme × workload) from the store alone; the store is the source of
//!   truth for EXPERIMENTS.md.
//!
//! The `dirsim-sweep` binary ties these together; see `specs/` for the
//! committed grid definitions.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cell;
pub mod report;
pub mod run;
pub mod spec;
pub mod store;

pub use cell::{Cell, CellInput, CellRecord};
pub use report::render_report;
pub use run::{run_sweep, SweepOptions, SweepSummary};
pub use spec::{CostModelKind, SpecError, SweepSource, SweepSpec};
pub use store::{Store, StoreError};

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Any failure raised while expanding, running, or reporting a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// The `.sweep` spec failed to parse or expand.
    Spec(SpecError),
    /// The result store is unreadable or corrupt.
    Store(StoreError),
    /// A cell's simulation failed.
    Sim(dirsim::Error),
    /// A report could not be rendered from the store.
    Report(report::ReportError),
    /// Reading the spec file (or another sweep file) failed.
    Io(io::Error),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "sweep spec error: {e}"),
            SweepError::Store(e) => write!(f, "sweep store error: {e}"),
            SweepError::Sim(e) => write!(f, "sweep cell failed: {e}"),
            SweepError::Report(e) => write!(f, "sweep report error: {e}"),
            SweepError::Io(e) => write!(f, "sweep i/o error: {e}"),
        }
    }
}

impl StdError for SweepError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SweepError::Spec(e) => Some(e),
            SweepError::Store(e) => Some(e),
            SweepError::Sim(e) => Some(e),
            SweepError::Report(e) => Some(e),
            SweepError::Io(e) => Some(e),
        }
    }
}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        SweepError::Store(e)
    }
}

impl From<dirsim::Error> for SweepError {
    fn from(e: dirsim::Error) -> Self {
        SweepError::Sim(e)
    }
}

impl From<report::ReportError> for SweepError {
    fn from(e: report::ReportError) -> Self {
        SweepError::Report(e)
    }
}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}
