//! The `.sweep` grid spec: axes in, cells out.
//!
//! A sweep spec is a flat `key = value, value, ...` file naming each axis
//! of the evaluation grid. The grid is the full cross product, in spec
//! order — the same order the paper's tables use:
//!
//! ```text
//! # Table 5 lineup over the three paper traces.
//! schemes     = Dir0B, Dir1NB, DirnNB, WTI, Dragon
//! scenarios   = pops, thor, pero
//! geometries  = infinite, 64x4
//! cpus        = default, 8
//! refs        = 100_000
//! cost-models = pipelined, non-pipelined
//! ```
//!
//! `schemes` and `scenarios` are required; the other axes default to the
//! paper's baseline (`geometries = infinite`, `cpus = default`,
//! `refs = 100_000`, `cost-models = pipelined`). Scenario entries are
//! resolved the same way `simulate --scenario` resolves them: a bundled
//! name (`pops`), a path to a `.scn` file, **or a path to a trace or
//! corpus file** in any format the frontend registry sniffs (`DTR1`,
//! `DTR2`, `DTR3` corpus, text, CSV) — an existing file the registry
//! recognises becomes a [`SweepSource::Trace`] axis entry, streamed at
//! run time instead of regenerated from a seed. `cost-models` selects
//! which cost columns the report renders; it is *not* part of a cell's
//! identity, because every stored record carries both pricings (§4 of
//! the paper separates event frequencies from event costs, and so does
//! the store).

use std::fmt;
use std::str::FromStr;

use dirsim_mem::CacheGeometry;
use dirsim_protocol::Scheme;
use dirsim_trace::synth::WorkloadConfig;
use dirsim_trace::{FrontendRegistry, Scenario};

use crate::cell::Cell;

/// Default references simulated per cell when the spec omits `refs`.
pub const DEFAULT_REFS: usize = 100_000;

/// Which [`dirsim_cost::CostModel`] a report column prices events with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModelKind {
    /// The paper's pipelined bus (Table 5).
    Pipelined,
    /// The paper's non-pipelined bus (Table 6).
    NonPipelined,
}

impl CostModelKind {
    /// Spec-file / report label.
    pub fn label(self) -> &'static str {
        match self {
            CostModelKind::Pipelined => "pipelined",
            CostModelKind::NonPipelined => "non-pipelined",
        }
    }

    /// The concrete cost model.
    pub fn model(self) -> dirsim_cost::CostModel {
        match self {
            CostModelKind::Pipelined => dirsim_cost::CostModel::pipelined(),
            CostModelKind::NonPipelined => dirsim_cost::CostModel::non_pipelined(),
        }
    }
}

/// A parse or expansion failure, with the 1-based spec line when one
/// applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number in the spec text; `None` for whole-spec errors.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        SpecError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn whole(message: impl Into<String>) -> Self {
        SpecError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for SpecError {}

/// One entry of the `scenarios` axis: a synthetic scenario, or an
/// existing trace/corpus file in any format the frontend registry
/// recognises. The sniffing rule is the one `simulate --scenario`
/// applies — magic bytes first, extension second — so `.scn` spec files
/// and bundled scenario names fall through to [`Scenario::resolve`].
#[derive(Debug, Clone)]
pub enum SweepSource {
    /// Synthetic workload, regenerated from its seed per cell.
    Scenario(Box<Scenario>),
    /// External trace/corpus file, streamed per cell.
    Trace {
        /// Path as written in the spec.
        path: String,
        /// Byte length at parse time; enters every cell's identity hash.
        len: u64,
    },
}

impl SweepSource {
    /// Axis label: the scenario name, or the trace path as written.
    pub fn name(&self) -> &str {
        match self {
            SweepSource::Scenario(s) => s.name(),
            SweepSource::Trace { path, .. } => path,
        }
    }
}

/// A parsed sweep grid: one `Vec` per axis, in spec order.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Coherence schemes (paper notation, e.g. `Dir1NB`).
    pub schemes: Vec<Scheme>,
    /// Resolved workload sources (scenarios and/or trace files).
    pub scenarios: Vec<SweepSource>,
    /// Cache geometries; `None` is the paper's infinite cache.
    pub geometries: Vec<Option<CacheGeometry>>,
    /// CPU-count overrides; `None` keeps each scenario's own count.
    pub cpus: Vec<Option<u16>>,
    /// References simulated per cell.
    pub refs: Vec<usize>,
    /// Cost models the report prices cells with (not part of cell identity).
    pub cost_models: Vec<CostModelKind>,
}

impl SweepSpec {
    /// Parses a `.sweep` spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending line for unknown or
    /// duplicate keys, malformed values, unresolvable scenarios, duplicate
    /// axis entries (which would double-count cells), or a missing
    /// required axis.
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        let mut schemes: Option<Vec<Scheme>> = None;
        let mut scenarios: Option<Vec<SweepSource>> = None;
        let mut geometries: Option<Vec<Option<CacheGeometry>>> = None;
        let mut cpus: Option<Vec<Option<u16>>> = None;
        let mut refs: Option<Vec<usize>> = None;
        let mut cost_models: Option<Vec<CostModelKind>> = None;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                SpecError::at(line_no, format!("expected `key = values`, got `{line}`"))
            })?;
            let key = key.trim();
            let values: Vec<&str> = value
                .split(',')
                .map(str::trim)
                .filter(|v| !v.is_empty())
                .collect();
            if values.is_empty() {
                return Err(SpecError::at(line_no, format!("`{key}` lists no values")));
            }
            match key {
                "schemes" => {
                    set_axis(&mut schemes, key, line_no, parse_schemes(&values, line_no)?)?;
                }
                "scenarios" => {
                    set_axis(
                        &mut scenarios,
                        key,
                        line_no,
                        parse_scenarios(&values, line_no)?,
                    )?;
                }
                "geometries" => {
                    set_axis(
                        &mut geometries,
                        key,
                        line_no,
                        parse_geometries(&values, line_no)?,
                    )?;
                }
                "cpus" => {
                    set_axis(&mut cpus, key, line_no, parse_cpus(&values, line_no)?)?;
                }
                "refs" => {
                    set_axis(&mut refs, key, line_no, parse_refs(&values, line_no)?)?;
                }
                "cost-models" => {
                    set_axis(
                        &mut cost_models,
                        key,
                        line_no,
                        parse_cost_models(&values, line_no)?,
                    )?;
                }
                other => {
                    return Err(SpecError::at(line_no, format!("unknown key `{other}`")));
                }
            }
        }

        let spec = SweepSpec {
            schemes: schemes.ok_or_else(|| SpecError::whole("spec names no `schemes`"))?,
            scenarios: scenarios.ok_or_else(|| SpecError::whole("spec names no `scenarios`"))?,
            geometries: geometries.unwrap_or_else(|| vec![None]),
            cpus: cpus.unwrap_or_else(|| vec![None]),
            refs: refs.unwrap_or_else(|| vec![DEFAULT_REFS]),
            cost_models: cost_models.unwrap_or_else(|| vec![CostModelKind::Pipelined]),
        };
        Ok(spec)
    }

    /// Number of grid cells (`cost-models` is a report axis, not a cell
    /// axis).
    pub fn cell_count(&self) -> usize {
        self.schemes.len()
            * self.scenarios.len()
            * self.geometries.len()
            * self.cpus.len()
            * self.refs.len()
    }

    /// Expands the cross product into concrete cells, in axis order
    /// (refs, then cpus, then geometry, then scenario, then scheme varying
    /// fastest — so the report's scheme × scenario tables fill row-major).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if a CPU override produces an invalid
    /// workload for some scenario.
    pub fn expand(&self) -> Result<Vec<Cell>, SpecError> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for &refs in &self.refs {
            for &cpus in &self.cpus {
                for &geometry in &self.geometries {
                    for source in &self.scenarios {
                        match source {
                            SweepSource::Scenario(scenario) => {
                                let config = apply_cpus(scenario.config(), cpus).map_err(|e| {
                                    SpecError::whole(format!(
                                        "scenario `{}` with cpus={}: {e}",
                                        scenario.name(),
                                        cpus.map_or("default".to_string(), |c| c.to_string()),
                                    ))
                                })?;
                                for &scheme in &self.schemes {
                                    cells.push(Cell::new(
                                        scheme,
                                        scenario,
                                        config.clone(),
                                        geometry,
                                        cpus,
                                        refs,
                                    ));
                                }
                            }
                            SweepSource::Trace { path, len } => {
                                for &scheme in &self.schemes {
                                    cells.push(Cell::from_trace(
                                        scheme, path, *len, geometry, cpus, refs,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// Applies a `cpus` override to a scenario's workload: the CPU count is
/// replaced and the process count raised to keep `processes >= cpus`
/// (a [`WorkloadConfig`] invariant).
fn apply_cpus(
    config: &WorkloadConfig,
    cpus: Option<u16>,
) -> Result<WorkloadConfig, dirsim_trace::synth::ConfigError> {
    let mut config = config.clone();
    if let Some(cpus) = cpus {
        config.cpus = cpus;
        config.processes = config.processes.max(u32::from(cpus));
    }
    config.validate()?;
    Ok(config)
}

fn set_axis<T>(
    slot: &mut Option<Vec<T>>,
    key: &str,
    line: usize,
    values: Vec<T>,
) -> Result<(), SpecError> {
    if slot.is_some() {
        return Err(SpecError::at(line, format!("duplicate key `{key}`")));
    }
    *slot = Some(values);
    Ok(())
}

fn reject_duplicates(labels: &[String], axis: &str, line: usize) -> Result<(), SpecError> {
    for (i, label) in labels.iter().enumerate() {
        if labels[..i].contains(label) {
            return Err(SpecError::at(
                line,
                format!("duplicate {axis} entry `{label}` would double-count cells"),
            ));
        }
    }
    Ok(())
}

fn parse_schemes(values: &[&str], line: usize) -> Result<Vec<Scheme>, SpecError> {
    let schemes = values
        .iter()
        .map(|v| Scheme::from_str(v).map_err(|e| SpecError::at(line, format!("scheme `{v}`: {e}"))))
        .collect::<Result<Vec<_>, _>>()?;
    let labels: Vec<String> = schemes.iter().map(|s| s.name()).collect();
    reject_duplicates(&labels, "scheme", line)?;
    Ok(schemes)
}

fn parse_scenarios(values: &[&str], line: usize) -> Result<Vec<SweepSource>, SpecError> {
    let sources = values
        .iter()
        .map(|v| {
            // The same rule `simulate --scenario` applies: an existing
            // file the frontend registry recognises is a trace; `.scn`
            // files and bundled names resolve as scenarios.
            let path = std::path::Path::new(v);
            if path.is_file() && matches!(FrontendRegistry::builtin().find(path), Ok(Some(_))) {
                let len = std::fs::metadata(path)
                    .map_err(|e| SpecError::at(line, format!("trace `{v}`: {e}")))?
                    .len();
                return Ok(SweepSource::Trace {
                    path: (*v).to_string(),
                    len,
                });
            }
            Scenario::resolve(v)
                .map(|s| SweepSource::Scenario(Box::new(s)))
                .map_err(|e| SpecError::at(line, format!("scenario `{v}`: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let labels: Vec<String> = sources.iter().map(|s| s.name().to_string()).collect();
    reject_duplicates(&labels, "scenario", line)?;
    Ok(sources)
}

fn parse_geometries(values: &[&str], line: usize) -> Result<Vec<Option<CacheGeometry>>, SpecError> {
    let geometries = values
        .iter()
        .map(|v| parse_geometry(v, line))
        .collect::<Result<Vec<_>, _>>()?;
    let labels: Vec<String> = geometries
        .iter()
        .map(|g| crate::cell::geometry_label(*g))
        .collect();
    reject_duplicates(&labels, "geometry", line)?;
    Ok(geometries)
}

fn parse_geometry(value: &str, line: usize) -> Result<Option<CacheGeometry>, SpecError> {
    if value.eq_ignore_ascii_case("infinite") {
        return Ok(None);
    }
    let (sets, ways) = value.split_once('x').ok_or_else(|| {
        SpecError::at(
            line,
            format!("geometry `{value}` is neither `infinite` nor `SETSxWAYS`"),
        )
    })?;
    let sets = parse_number(sets)
        .ok_or_else(|| SpecError::at(line, format!("geometry `{value}`: bad set count")))?;
    let ways = parse_number(ways)
        .ok_or_else(|| SpecError::at(line, format!("geometry `{value}`: bad way count")))?;
    let geometry = CacheGeometry {
        sets: sets as u32,
        ways: ways as u32,
    };
    geometry
        .validate()
        .map_err(|e| SpecError::at(line, format!("geometry `{value}`: {e}")))?;
    Ok(Some(geometry))
}

fn parse_cpus(values: &[&str], line: usize) -> Result<Vec<Option<u16>>, SpecError> {
    let cpus = values
        .iter()
        .map(|v| {
            if v.eq_ignore_ascii_case("default") {
                Ok(None)
            } else {
                match parse_number(v) {
                    Some(n) if n >= 1 && n <= u64::from(u16::MAX) => Ok(Some(n as u16)),
                    _ => Err(SpecError::at(
                        line,
                        format!("cpus `{v}` is neither `default` nor a count in 1..=65535"),
                    )),
                }
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let labels: Vec<String> = cpus.iter().map(|c| crate::cell::cpus_label(*c)).collect();
    reject_duplicates(&labels, "cpus", line)?;
    Ok(cpus)
}

fn parse_refs(values: &[&str], line: usize) -> Result<Vec<usize>, SpecError> {
    let refs = values
        .iter()
        .map(|v| match parse_number(v) {
            Some(n) if n >= 1 => Ok(n as usize),
            _ => Err(SpecError::at(
                line,
                format!("refs `{v}` is not a positive count"),
            )),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let labels: Vec<String> = refs.iter().map(|r| r.to_string()).collect();
    reject_duplicates(&labels, "refs", line)?;
    Ok(refs)
}

fn parse_cost_models(values: &[&str], line: usize) -> Result<Vec<CostModelKind>, SpecError> {
    let models = values
        .iter()
        .map(|v| {
            if v.eq_ignore_ascii_case("pipelined") {
                Ok(CostModelKind::Pipelined)
            } else if v.eq_ignore_ascii_case("non-pipelined") {
                Ok(CostModelKind::NonPipelined)
            } else {
                Err(SpecError::at(
                    line,
                    format!("cost model `{v}` is neither `pipelined` nor `non-pipelined`"),
                ))
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let labels: Vec<String> = models.iter().map(|m| m.label().to_string()).collect();
    reject_duplicates(&labels, "cost model", line)?;
    Ok(models)
}

/// Parses a decimal count; underscores are digit separators, as in `.scn`
/// specs (`100_000`).
fn parse_number(value: &str) -> Option<u64> {
    let cleaned: String = value.chars().filter(|&c| c != '_').collect();
    if cleaned.is_empty() {
        return None;
    }
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellInput;

    const FULL: &str = "\
# exercise every axis
schemes     = Dir1NB, WTI
scenarios   = pops, thor
geometries  = infinite, 64x4
cpus        = default, 8
refs        = 2_000
cost-models = pipelined, non-pipelined
";

    #[test]
    fn parses_every_axis_and_counts_cells() {
        let spec = SweepSpec::parse(FULL).unwrap();
        assert_eq!(spec.schemes.len(), 2);
        assert_eq!(spec.scenarios.len(), 2);
        assert_eq!(
            spec.geometries,
            vec![None, Some(CacheGeometry { sets: 64, ways: 4 })]
        );
        assert_eq!(spec.cpus, vec![None, Some(8)]);
        assert_eq!(spec.refs, vec![2_000]);
        assert_eq!(spec.cost_models.len(), 2);
        assert_eq!(spec.cell_count(), 16);
        assert_eq!(spec.expand().unwrap().len(), 16);
    }

    #[test]
    fn missing_axes_take_paper_defaults() {
        let spec = SweepSpec::parse("schemes = Dir0B\nscenarios = pops\n").unwrap();
        assert_eq!(spec.geometries, vec![None]);
        assert_eq!(spec.cpus, vec![None]);
        assert_eq!(spec.refs, vec![DEFAULT_REFS]);
        assert_eq!(spec.cost_models, vec![CostModelKind::Pipelined]);
        assert_eq!(spec.cell_count(), 1);
    }

    #[test]
    fn missing_required_axis_is_an_error() {
        let err = SweepSpec::parse("schemes = Dir0B\n").unwrap_err();
        assert!(err.to_string().contains("scenarios"), "{err}");
    }

    #[test]
    fn bad_lines_carry_line_numbers() {
        let err = SweepSpec::parse("schemes = Dir0B\nscenarios = nope\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.to_string().contains("nope"), "{err}");

        let err = SweepSpec::parse("schemes = Dir0B\nwat = 1\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.to_string().contains("unknown key"), "{err}");

        let err = SweepSpec::parse("schemes = Dir0B\ngeometries = 63x4\n").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn duplicate_entries_and_keys_are_rejected() {
        let err = SweepSpec::parse("schemes = Dir0B, Dir0B\nscenarios = pops\n").unwrap_err();
        assert!(err.to_string().contains("double-count"), "{err}");

        let err =
            SweepSpec::parse("schemes = Dir0B\nschemes = WTI\nscenarios = pops\n").unwrap_err();
        assert!(err.to_string().contains("duplicate key"), "{err}");
    }

    #[test]
    fn cpu_override_raises_process_count() {
        let spec =
            SweepSpec::parse("schemes = Dir0B\nscenarios = pops\ncpus = 16\nrefs = 100\n").unwrap();
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 1);
        let CellInput::Synthetic(config) = &cells[0].input else {
            panic!("scenario entry must expand to a synthetic cell");
        };
        assert_eq!(config.cpus, 16);
        assert!(config.processes >= 16);
    }

    #[test]
    fn trace_files_join_the_scenarios_axis() {
        use std::io::Write as _;
        let path = std::env::temp_dir().join(format!(
            "dirsim-sweep-spec-trace-{}.dtr",
            std::process::id()
        ));
        {
            let mut out = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            let refs = Scenario::named("pops").unwrap().workload().take(64);
            dirsim_trace::io::write_binary(&mut out, refs).unwrap();
            out.flush().unwrap();
        }
        let text = format!(
            "schemes = Dir0B, WTI\nscenarios = pops, {}\nrefs = 50\n",
            path.display()
        );
        let spec = SweepSpec::parse(&text).unwrap();
        assert_eq!(spec.scenarios.len(), 2);
        assert!(matches!(spec.scenarios[0], SweepSource::Scenario(_)));
        let SweepSource::Trace { ref len, .. } = spec.scenarios[1] else {
            panic!("existing DTR1 file must sniff as a trace entry");
        };
        assert_eq!(*len, 8 + 64 * 16, "header plus 64 fixed records");

        // The mixed axis expands to synthetic and trace cells side by side.
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 4);
        assert!(matches!(cells[0].input, CellInput::Synthetic(_)));
        assert!(matches!(cells[2].input, CellInput::Trace { .. }));
        assert_eq!(cells[2].scenario, path.display().to_string());

        // A duplicate trace path double-counts cells, like any axis entry.
        let dup = format!(
            "schemes = Dir0B\nscenarios = {p}, {p}\n",
            p = path.display()
        );
        let err = SweepSpec::parse(&dup).unwrap_err();
        assert!(err.to_string().contains("double-count"), "{err}");

        // A missing file is not sniffable and falls through to scenario
        // resolution, which names the value in its error.
        let err = SweepSpec::parse("schemes = Dir0B\nscenarios = no-such.dtr\n").unwrap_err();
        assert!(err.to_string().contains("no-such.dtr"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec =
            SweepSpec::parse("# grid\n\nschemes = Dir0B # trailing\nscenarios = pops\n").unwrap();
        assert_eq!(spec.cell_count(), 1);
    }
}
