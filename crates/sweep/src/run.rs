//! The sweep executor: a worker pool of pipelined engines over the
//! pending cells.
//!
//! Scheduling is deliberately simple. Cells are independent (the grid is
//! a cross product, and every cell regenerates its workload from the
//! scenario seed), so a shared work queue plus a result channel is all
//! the coordination needed. Each worker runs its cell through the normal
//! [`Experiment`] front door in `Pipelined { workers: 1 }` mode — trace
//! decode overlapped with simulation inside the cell, cell-level
//! parallelism across the pool — which keeps every result bit-identical
//! to a serial `simulate` run of the same configuration (the equivalence
//! the engine's tier-1 tests pin).
//!
//! The main thread owns the store: workers never touch the file, results
//! are appended (and flushed) in completion order, and a crash between
//! appends loses only cells that had not finished. Progress goes through
//! [`dirsim_obs::ProgressMeter`] — cells done/total, aggregate refs/sec,
//! and an ETA from the mean cell time so far.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dirsim::{ExecutionMode, Experiment, NamedWorkload, SimConfig};
use dirsim_cost::CostModel;
use dirsim_obs::{NoopRecorder, ProgressMeter, Recorder};

use crate::cell::{Cell, CellRecord};
use crate::store::Store;
use crate::{SweepError, SweepSpec};

/// Tuning knobs for [`run_sweep`].
#[derive(Debug)]
pub struct SweepOptions {
    /// Worker threads; 0 means one per available CPU.
    pub workers: usize,
    /// Emit live progress to stderr.
    pub progress: bool,
    /// Metrics sink for sweep-level counters (cells run/skipped, refs).
    pub recorder: Arc<dyn Recorder>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            progress: false,
            recorder: Arc::new(NoopRecorder),
        }
    }
}

/// What one [`run_sweep`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Cells in the expanded grid.
    pub total: usize,
    /// Cells simulated by this invocation.
    pub ran: usize,
    /// Cells already in the store, left untouched.
    pub skipped: usize,
    /// References simulated by this invocation.
    pub refs_simulated: u64,
    /// Wall-clock seconds spent running cells.
    pub wall_secs: f64,
}

/// Expands `spec`, skips every cell already in `store`, runs the rest
/// over a worker pool, and streams each completed cell to the store.
///
/// # Errors
///
/// Returns the first [`SweepError`] hit: spec expansion, a cell's
/// simulation, or a store append. Cells completed before the failure are
/// already durable in the store, so a re-run resumes past them.
pub fn run_sweep(
    spec: &SweepSpec,
    store: &mut Store,
    opts: &SweepOptions,
) -> Result<SweepSummary, SweepError> {
    let cells = spec.expand()?;
    let total = cells.len();
    let pending: Vec<Cell> = cells
        .into_iter()
        .filter(|c| !store.contains(&c.hash))
        .collect();
    let skipped = total - pending.len();
    let refs_pending: u64 = pending.iter().map(|c| c.refs as u64).sum();
    opts.recorder
        .counter("sweep_cells_total", &[], total as u64);
    opts.recorder
        .counter("sweep_cells_skipped", &[], skipped as u64);

    let workers = effective_workers(opts.workers, pending.len());
    let mut meter = progress_meter(opts.progress, total, skipped);
    let start = Instant::now();

    let mut ran = 0usize;
    let mut refs_simulated = 0u64;
    let mut first_err: Option<SweepError> = None;

    if !pending.is_empty() {
        let queue = Mutex::new(pending.into_iter());
        let queue = &queue;
        let (tx, rx) = mpsc::channel::<(Cell, Result<CellRecord, SweepError>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let cell = queue.lock().expect("queue poisoned").next();
                    let Some(cell) = cell else { break };
                    let result = run_cell(&cell);
                    if tx.send((cell, result)).is_err() {
                        break; // main thread stopped listening
                    }
                });
            }
            drop(tx);
            for (cell, result) in rx {
                let record = match result {
                    Ok(record) => record,
                    Err(e) => {
                        first_err = Some(e);
                        // Dropping the receiver makes every worker's next
                        // send fail, draining the pool.
                        break;
                    }
                };
                if let Err(e) = store.append(&record) {
                    first_err = Some(e.into());
                    break;
                }
                ran += 1;
                refs_simulated += record.refs;
                let scheme = cell.scheme.name();
                opts.recorder
                    .counter("sweep_cells_run", &[("scheme", scheme.as_str())], 1);
                opts.recorder.counter("sweep_refs", &[], record.refs);
                let eta = eta_secs(start.elapsed(), refs_simulated, refs_pending);
                meter.tick_now(ran as u64, eta);
            }
        });
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    let wall_secs = start.elapsed().as_secs_f64();
    meter.finish(ran as u64, None);
    Ok(SweepSummary {
        total,
        ran,
        skipped,
        refs_simulated,
        wall_secs,
    })
}

/// Runs one cell and condenses the result into its store record.
fn run_cell(cell: &Cell) -> Result<CellRecord, SweepError> {
    let sim = SimConfig {
        geometry: cell.geometry,
        ..SimConfig::default()
    };
    let results = Experiment::new()
        .workload(NamedWorkload::new(
            cell.scenario.clone(),
            cell.config.clone(),
        ))
        .scheme(cell.scheme)
        .refs_per_trace(cell.refs)
        .sim_config(sim)
        .execution(ExecutionMode::Pipelined { workers: 1 })
        .run()?;
    let result = &results.per_scheme[0].combined;
    Ok(CellRecord {
        hash: cell.hash.clone(),
        scheme: result.scheme.clone(),
        scenario: cell.scenario.clone(),
        geometry: cell.geometry_label(),
        cpus: u32::from(cell.config.cpus),
        refs: result.refs,
        transactions: result.transactions,
        distinct_blocks: result.distinct_blocks,
        evictions: result.capacity_evictions,
        miss_rate: result.events.data_miss_rate(),
        pipelined_cpr: result.cycles_per_ref(CostModel::pipelined()),
        non_pipelined_cpr: result.cycles_per_ref(CostModel::non_pipelined()),
    })
}

fn effective_workers(requested: usize, pending: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if requested == 0 { available } else { requested };
    workers.clamp(1, pending.max(1))
}

/// ETA from the aggregate reference rate so far: remaining refs over
/// refs/sec. Reference-weighted, so a grid mixing cheap and expensive
/// cells converges faster than a per-cell mean would.
fn eta_secs(elapsed: Duration, refs_done: u64, refs_pending: u64) -> Option<u64> {
    let secs = elapsed.as_secs_f64();
    if refs_done == 0 || secs <= 0.0 {
        return None;
    }
    let rate = refs_done as f64 / secs;
    let remaining = refs_pending.saturating_sub(refs_done) as f64;
    Some((remaining / rate).ceil() as u64)
}

fn progress_meter(enabled: bool, total: usize, skipped: usize) -> ProgressMeter {
    if !enabled {
        return ProgressMeter::disabled();
    }
    ProgressMeter::new(
        "cells",
        Duration::from_millis(500),
        Box::new(move |p| {
            let eta = p
                .detail
                .map_or(String::new(), |secs| format!(", eta {secs}s"));
            eprintln!(
                "sweep: {}/{} cells ({} cached), {:.2} cells/s{eta}",
                p.done + skipped as u64,
                total,
                skipped,
                p.rate_per_sec,
            );
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dirsim-sweep-run-{}-{tag}.jsonl",
            std::process::id()
        ))
    }

    fn tiny_spec() -> SweepSpec {
        SweepSpec::parse("schemes = Dir1NB, WTI\nscenarios = pops\nrefs = 2_000\n").unwrap()
    }

    #[test]
    fn runs_then_skips_and_matches_single_cell_results() {
        let path = temp_store("skip");
        let _ = fs::remove_file(&path);
        let mut store = Store::open(&path).unwrap();
        let spec = tiny_spec();

        let first = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!((first.total, first.ran, first.skipped), (2, 2, 0));
        assert_eq!(first.refs_simulated, 4_000);
        let bytes = fs::read(&path).unwrap();

        let again = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!((again.total, again.ran, again.skipped), (2, 0, 2));
        assert_eq!(again.refs_simulated, 0);
        assert_eq!(fs::read(&path).unwrap(), bytes, "skip must not rewrite");

        // The stored numbers are the engine's own, not a re-derivation.
        let cell = &spec.expand().unwrap()[0];
        let direct = run_cell(cell).unwrap();
        assert_eq!(store.records()[0], direct);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn worker_count_clamps_to_pending_cells() {
        assert_eq!(effective_workers(8, 2), 2);
        assert_eq!(effective_workers(1, 100), 1);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(3, 0), 1);
    }

    #[test]
    fn eta_is_reference_weighted() {
        let eta = eta_secs(Duration::from_secs(10), 1_000, 3_000).unwrap();
        assert_eq!(eta, 20);
        assert!(eta_secs(Duration::from_secs(1), 0, 100).is_none());
    }
}
