//! The sweep executor: a worker pool of pipelined engines over the
//! pending cells.
//!
//! Scheduling is deliberately simple. Cells are independent (the grid is
//! a cross product, and every cell regenerates its workload from the
//! scenario seed or re-streams its trace file), so a shared work queue
//! plus a result channel is all the coordination needed. Each worker runs its cell through the normal
//! [`Experiment`] front door in `Pipelined { workers: 1 }` mode — trace
//! decode overlapped with simulation inside the cell, cell-level
//! parallelism across the pool — which keeps every result bit-identical
//! to a serial `simulate` run of the same configuration (the equivalence
//! the engine's tier-1 tests pin).
//!
//! The main thread owns the store: workers never touch the file, results
//! are appended (and flushed) in completion order, and a crash between
//! appends loses only cells that had not finished. Progress goes through
//! [`dirsim_obs::ProgressMeter`] — cells done/total, aggregate refs/sec,
//! and an ETA from the mean cell time so far.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dirsim::{BroadcastSimulator, ExecutionMode, Experiment, NamedWorkload, SimConfig, SimResult};
use dirsim_cost::CostModel;
use dirsim_obs::{NoopRecorder, ProgressMeter, Recorder};
use dirsim_trace::{open_trace, TakeSource, TraceSource, TraceStats};

use crate::cell::{Cell, CellInput, CellRecord};
use crate::store::Store;
use crate::{SweepError, SweepSpec};

/// Tuning knobs for [`run_sweep`].
#[derive(Debug)]
pub struct SweepOptions {
    /// Worker threads; 0 means one per available CPU.
    pub workers: usize,
    /// Emit live progress to stderr.
    pub progress: bool,
    /// Metrics sink for sweep-level counters (cells run/skipped, refs).
    pub recorder: Arc<dyn Recorder>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            progress: false,
            recorder: Arc::new(NoopRecorder),
        }
    }
}

/// What one [`run_sweep`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Cells in the expanded grid.
    pub total: usize,
    /// Cells simulated by this invocation.
    pub ran: usize,
    /// Cells already in the store, left untouched.
    pub skipped: usize,
    /// References simulated by this invocation.
    pub refs_simulated: u64,
    /// Wall-clock seconds spent running cells.
    pub wall_secs: f64,
}

/// Expands `spec`, skips every cell already in `store`, runs the rest
/// over a worker pool, and streams each completed cell to the store.
///
/// # Errors
///
/// Returns the first [`SweepError`] hit: spec expansion, a cell's
/// simulation, or a store append. Cells completed before the failure are
/// already durable in the store, so a re-run resumes past them.
pub fn run_sweep(
    spec: &SweepSpec,
    store: &mut Store,
    opts: &SweepOptions,
) -> Result<SweepSummary, SweepError> {
    let cells = spec.expand()?;
    let total = cells.len();
    let pending: Vec<Cell> = cells
        .into_iter()
        .filter(|c| !store.contains(&c.hash))
        .collect();
    let skipped = total - pending.len();
    let refs_pending: u64 = pending.iter().map(|c| c.refs as u64).sum();
    opts.recorder
        .counter("sweep_cells_total", &[], total as u64);
    opts.recorder
        .counter("sweep_cells_skipped", &[], skipped as u64);

    let workers = effective_workers(opts.workers, pending.len());
    let mut meter = progress_meter(opts.progress, total, skipped);
    let start = Instant::now();

    let mut ran = 0usize;
    let mut refs_simulated = 0u64;
    let mut first_err: Option<SweepError> = None;

    if !pending.is_empty() {
        let queue = Mutex::new(pending.into_iter());
        let queue = &queue;
        let (tx, rx) = mpsc::channel::<(Cell, Result<CellRecord, SweepError>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let cell = queue.lock().expect("queue poisoned").next();
                    let Some(cell) = cell else { break };
                    let result = run_cell(&cell);
                    if tx.send((cell, result)).is_err() {
                        break; // main thread stopped listening
                    }
                });
            }
            drop(tx);
            for (cell, result) in rx {
                let record = match result {
                    Ok(record) => record,
                    Err(e) => {
                        first_err = Some(e);
                        // Dropping the receiver makes every worker's next
                        // send fail, draining the pool.
                        break;
                    }
                };
                if let Err(e) = store.append(&record) {
                    first_err = Some(e.into());
                    break;
                }
                ran += 1;
                refs_simulated += record.refs;
                let scheme = cell.scheme.name();
                opts.recorder
                    .counter("sweep_cells_run", &[("scheme", scheme.as_str())], 1);
                opts.recorder.counter("sweep_refs", &[], record.refs);
                let eta = eta_secs(start.elapsed(), refs_simulated, refs_pending);
                meter.tick_now(ran as u64, eta);
            }
        });
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    let wall_secs = start.elapsed().as_secs_f64();
    meter.finish(ran as u64, None);
    Ok(SweepSummary {
        total,
        ran,
        skipped,
        refs_simulated,
        wall_secs,
    })
}

/// Runs one cell and condenses the result into its store record.
///
/// Synthetic cells go through the normal [`Experiment`] front door;
/// trace cells stream their file through the frontend registry into a
/// [`BroadcastSimulator`] with the same `Pipelined { workers: 1 }`
/// placement, so both kinds stay bit-identical to a `simulate` run of
/// the same configuration.
fn run_cell(cell: &Cell) -> Result<CellRecord, SweepError> {
    let sim = SimConfig {
        geometry: cell.geometry,
        ..SimConfig::default()
    };
    let (result, cpus): (SimResult, u32) = match &cell.input {
        CellInput::Synthetic(config) => {
            let results = Experiment::new()
                .workload(NamedWorkload::new(cell.scenario.clone(), config.clone()))
                .scheme(cell.scheme)
                .refs_per_trace(cell.refs)
                .sim_config(sim)
                .execution(ExecutionMode::Pipelined { workers: 1 })
                .run()?;
            (
                results.per_scheme[0].combined.clone(),
                u32::from(config.cpus),
            )
        }
        CellInput::Trace { path, .. } => {
            let caches = trace_caches(cell, path)?;
            let source = TakeSource::new(
                open_trace(path).map_err(dirsim::Error::from)?,
                cell.refs as u64,
            );
            let results = BroadcastSimulator::new(sim).workers(1).run_pipelined(
                &[cell.scheme],
                caches,
                source,
            )?;
            let result = results
                .into_iter()
                .next()
                .expect("one scheme in, one result out");
            (result, caches)
        }
    };
    Ok(CellRecord {
        hash: cell.hash.clone(),
        scheme: result.scheme.clone(),
        scenario: cell.scenario.clone(),
        geometry: cell.geometry_label(),
        cpus,
        refs: result.refs,
        transactions: result.transactions,
        distinct_blocks: result.distinct_blocks,
        evictions: result.capacity_evictions,
        miss_rate: result.events.data_miss_rate(),
        pipelined_cpr: result.cycles_per_ref(CostModel::pipelined()),
        non_pipelined_cpr: result.cycles_per_ref(CostModel::non_pipelined()),
    })
}

/// Cache count for a trace cell: the spec's `cpus` override taken as an
/// explicit cache count, or one cache per process id observed in the
/// simulated prefix — the same default `simulate` applies to trace
/// files (ids, not distinct processes: an open-system trace can retire
/// an id without it ever emitting a reference).
fn trace_caches(cell: &Cell, path: &str) -> Result<u32, SweepError> {
    if let Some(cpus) = cell.cpus {
        return Ok(u32::from(cpus));
    }
    let source = open_trace(path).map_err(dirsim::Error::from)?;
    let mut src = TakeSource::new(source, cell.refs as u64);
    let mut stats = TraceStats::new();
    let mut chunk = Vec::new();
    while src
        .read_chunk(&mut chunk, 65_536)
        .map_err(dirsim::Error::from)?
        > 0
    {
        for r in &chunk {
            stats.observe(r);
        }
    }
    if stats.total() == 0 {
        return Err(SweepError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("trace `{path}` is empty"),
        )));
    }
    Ok(stats.process_id_bound())
}

fn effective_workers(requested: usize, pending: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if requested == 0 { available } else { requested };
    workers.clamp(1, pending.max(1))
}

/// ETA from the aggregate reference rate so far: remaining refs over
/// refs/sec. Reference-weighted, so a grid mixing cheap and expensive
/// cells converges faster than a per-cell mean would.
fn eta_secs(elapsed: Duration, refs_done: u64, refs_pending: u64) -> Option<u64> {
    let secs = elapsed.as_secs_f64();
    if refs_done == 0 || secs <= 0.0 {
        return None;
    }
    let rate = refs_done as f64 / secs;
    let remaining = refs_pending.saturating_sub(refs_done) as f64;
    Some((remaining / rate).ceil() as u64)
}

fn progress_meter(enabled: bool, total: usize, skipped: usize) -> ProgressMeter {
    if !enabled {
        return ProgressMeter::disabled();
    }
    ProgressMeter::new(
        "cells",
        Duration::from_millis(500),
        Box::new(move |p| {
            let eta = p
                .detail
                .map_or(String::new(), |secs| format!(", eta {secs}s"));
            eprintln!(
                "sweep: {}/{} cells ({} cached), {:.2} cells/s{eta}",
                p.done + skipped as u64,
                total,
                skipped,
                p.rate_per_sec,
            );
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dirsim-sweep-run-{}-{tag}.jsonl",
            std::process::id()
        ))
    }

    fn tiny_spec() -> SweepSpec {
        SweepSpec::parse("schemes = Dir1NB, WTI\nscenarios = pops\nrefs = 2_000\n").unwrap()
    }

    #[test]
    fn runs_then_skips_and_matches_single_cell_results() {
        let path = temp_store("skip");
        let _ = fs::remove_file(&path);
        let mut store = Store::open(&path).unwrap();
        let spec = tiny_spec();

        let first = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!((first.total, first.ran, first.skipped), (2, 2, 0));
        assert_eq!(first.refs_simulated, 4_000);
        let bytes = fs::read(&path).unwrap();

        let again = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!((again.total, again.ran, again.skipped), (2, 0, 2));
        assert_eq!(again.refs_simulated, 0);
        assert_eq!(fs::read(&path).unwrap(), bytes, "skip must not rewrite");

        // The stored numbers are the engine's own, not a re-derivation.
        let cell = &spec.expand().unwrap()[0];
        let direct = run_cell(cell).unwrap();
        assert_eq!(store.records()[0], direct);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_cells_run_skip_and_rerun_when_the_file_changes() {
        use std::io::Write as _;
        let trace =
            std::env::temp_dir().join(format!("dirsim-sweep-run-trace-{}.dtr", std::process::id()));
        let write_trace = |refs: usize| {
            let mut out = std::io::BufWriter::new(fs::File::create(&trace).unwrap());
            let workload = dirsim_trace::Scenario::named("pops").unwrap().workload();
            dirsim_trace::io::write_binary(&mut out, workload.take(refs)).unwrap();
            out.flush().unwrap();
        };
        write_trace(1_500);

        let path = temp_store("trace");
        let _ = fs::remove_file(&path);
        let mut store = Store::open(&path).unwrap();
        let text = format!(
            "schemes = Dir1NB, WTI\nscenarios = {}\nrefs = 1_000\n",
            trace.display()
        );
        let spec = SweepSpec::parse(&text).unwrap();

        let first = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!((first.total, first.ran, first.skipped), (2, 2, 0));
        // `refs` caps the stream: 1_000 of the file's 1_500 references.
        assert_eq!(first.refs_simulated, 2_000);
        let record = &store.records()[0];
        assert_eq!(record.scenario, trace.display().to_string());
        assert!(record.cpus > 0, "caches derived from the trace itself");
        assert!(record.transactions > 0);

        let again = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!((again.ran, again.skipped), (0, 2));

        // Rewriting the file changes its length, hence every cell's
        // identity — the grid re-runs instead of serving stale results.
        write_trace(2_000);
        let spec = SweepSpec::parse(&text).unwrap();
        let rerun = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!((rerun.ran, rerun.skipped), (2, 0));

        fs::remove_file(&path).unwrap();
        fs::remove_file(&trace).unwrap();
    }

    #[test]
    fn worker_count_clamps_to_pending_cells() {
        assert_eq!(effective_workers(8, 2), 2);
        assert_eq!(effective_workers(1, 100), 1);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(3, 0), 1);
    }

    #[test]
    fn eta_is_reference_weighted() {
        let eta = eta_secs(Duration::from_secs(10), 1_000, 3_000).unwrap();
        assert_eq!(eta, 20);
        assert!(eta_secs(Duration::from_secs(1), 0, 100).is_none());
    }
}
