//! Run a `.sweep` grid spec against a resumable result store.
//!
//! ```text
//! dirsim-sweep <spec.sweep> [--store PATH] [--workers N] [--progress]
//!              [--report] [--report-out PATH] [--expect-cached]
//!              [--list-cells] [--metrics-json PATH]
//! ```
//!
//! The spec names the grid's axes (see `crates/sweep/specs/` for the
//! committed grids); a `scenarios` entry may be a bundled scenario name,
//! a `.scn` spec file, or a trace/corpus file in any format the frontend
//! registry sniffs (`DTR1`, `DTR2`, `DTR3` corpus, text, CSV) — trace
//! entries stream the file per cell instead of regenerating a synthetic
//! workload. The store (default `sweep-store.jsonl`) accumulates
//! one JSON line per completed cell, keyed by configuration hash. Cells
//! already in the store are skipped, so re-running after a crash — or
//! after extending the spec — computes only what is missing. A torn final
//! line from a killed run is repaired on open.
//!
//! `--report` renders the paper tables (bus cycles per reference, scheme
//! × workload per cost model) from the store to stdout; `--report-out`
//! writes them to a file instead. `--expect-cached` fails if any cell had
//! to be simulated — CI uses it to pin that resume really resumes.
//! `--list-cells` prints the grid and each cell's cached/pending state
//! without running anything.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use dirsim_obs::{write_jsonl_file, MetricsRegistry, RunManifest};
use dirsim_sweep::{render_report, run_sweep, Store, SweepError, SweepOptions, SweepSpec};

struct Options {
    spec: PathBuf,
    store: PathBuf,
    workers: usize,
    progress: bool,
    report: bool,
    report_out: Option<PathBuf>,
    expect_cached: bool,
    list_cells: bool,
    metrics_json: Option<PathBuf>,
}

fn parse_args() -> Result<Options, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: dirsim-sweep <spec.sweep> [--store PATH] [--workers N] \
                 [--progress] [--report] [--report-out PATH] [--expect-cached] \
                 [--list-cells] [--metrics-json PATH]";
    let mut spec = None;
    let mut opts = Options {
        spec: PathBuf::new(),
        store: PathBuf::from("sweep-store.jsonl"),
        workers: 0,
        progress: false,
        report: false,
        report_out: None,
        expect_cached: false,
        list_cells: false,
        metrics_json: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--progress" => opts.progress = true,
            "--report" => opts.report = true,
            "--expect-cached" => opts.expect_cached = true,
            "--list-cells" => opts.list_cells = true,
            "--store" => {
                i += 1;
                opts.store = PathBuf::from(args.get(i).ok_or(usage)?);
            }
            "--report-out" => {
                i += 1;
                opts.report_out = Some(PathBuf::from(args.get(i).ok_or(usage)?));
            }
            "--metrics-json" => {
                i += 1;
                opts.metrics_json = Some(PathBuf::from(args.get(i).ok_or(usage)?));
            }
            "--workers" => {
                i += 1;
                opts.workers = args
                    .get(i)
                    .ok_or(usage)?
                    .parse()
                    .map_err(|_| "--workers expects a number")?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{usage}").into());
            }
            positional => {
                if spec.replace(PathBuf::from(positional)).is_some() {
                    return Err(usage.into());
                }
            }
        }
        i += 1;
    }
    opts.spec = spec.ok_or(usage)?;
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let text = fs::read_to_string(&opts.spec)
        .map_err(|e| format!("reading {}: {e}", opts.spec.display()))?;
    let spec = SweepSpec::parse(&text).map_err(SweepError::Spec)?;
    let mut store = Store::open(&opts.store)?;

    if opts.list_cells {
        for cell in spec.expand().map_err(SweepError::Spec)? {
            let state = if store.contains(&cell.hash) {
                "cached"
            } else {
                "pending"
            };
            println!(
                "{} {state} {} {} geometry={} cpus={} refs={}",
                cell.hash,
                cell.scheme.name(),
                cell.scenario,
                cell.geometry_label(),
                dirsim_sweep::cell::cpus_label(cell.cpus),
                cell.refs,
            );
        }
        return Ok(());
    }

    let registry = Arc::new(MetricsRegistry::new());
    let sweep_opts = SweepOptions {
        workers: opts.workers,
        progress: opts.progress,
        recorder: registry.clone(),
    };
    let summary = run_sweep(&spec, &mut store, &sweep_opts)?;
    eprintln!(
        "sweep: {} cells ({} ran, {} cached) in {:.2}s, {:.0} refs/s aggregate",
        summary.total,
        summary.ran,
        summary.skipped,
        summary.wall_secs,
        summary.refs_simulated as f64 / summary.wall_secs.max(1e-9),
    );

    if let Some(path) = &opts.metrics_json {
        let manifest = RunManifest::new("dirsim-sweep")
            .mode(&if opts.workers == 0 {
                "pool(auto)".to_string()
            } else {
                format!("pool({})", opts.workers)
            })
            .trace(&format!("sweep:{}", opts.spec.display()))
            .refs(summary.refs_simulated)
            .wall_secs(summary.wall_secs)
            .extra("cells_total", &summary.total.to_string())
            .extra("cells_ran", &summary.ran.to_string())
            .extra("cells_skipped", &summary.skipped.to_string());
        write_jsonl_file(path, &manifest, &registry)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    if opts.expect_cached && summary.ran > 0 {
        return Err(format!(
            "--expect-cached: {} of {} cells were not in the store",
            summary.ran, summary.total
        )
        .into());
    }

    if opts.report || opts.report_out.is_some() {
        let report = render_report(&spec, &store).map_err(SweepError::Report)?;
        match &opts.report_out {
            Some(path) => {
                fs::write(path, &report).map_err(|e| format!("writing {}: {e}", path.display()))?
            }
            None => print!("{report}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("dirsim-sweep: {err}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("dirsim-sweep: {err}");
            let mut source = err.source();
            while let Some(cause) = source {
                eprintln!("  caused by: {cause}");
                source = cause.source();
            }
            ExitCode::FAILURE
        }
    }
}
