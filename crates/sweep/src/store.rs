//! The append-only result store: one JSON line per completed cell.
//!
//! The store is the sweep's only durable state, so it is built for exactly
//! one failure mode: the process dies mid-write. Three properties make
//! that safe:
//!
//! * **Append-only, flushed per record** ([`dirsim_obs::JsonlAppender`]) —
//!   a completed cell is on disk before the next one starts, so a kill
//!   loses at most the record being written.
//! * **Repair on open** — a torn final line (the killed write) cannot be
//!   valid JSON, so [`Store::open`] detects it, truncates the file back to
//!   the last intact record, and carries on. Anything malformed *before*
//!   the final line is real corruption and is reported, not repaired.
//! * **Identity keys** — records are keyed by the cell's configuration
//!   hash ([`crate::cell::Cell::hash`]), so "is this cell done?" is a set
//!   lookup and re-running a spec appends only the missing cells.
//!
//! The first record is a header naming the store schema version; a store
//! written by an incompatible future version is refused rather than
//! half-read.

use std::collections::BTreeSet;
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use dirsim_obs::{Json, JsonlAppender};

use crate::cell::CellRecord;

/// Store format version, written in the header record.
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// A store failure: I/O, or corruption that repair must not paper over.
#[derive(Debug)]
pub enum StoreError {
    /// Reading, truncating, or appending to the store file failed.
    Io {
        /// Store path.
        path: PathBuf,
        /// Underlying error.
        source: io::Error,
    },
    /// A line before the final one is malformed — not a torn write.
    Corrupt {
        /// Store path.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store {}: {source}", path.display())
            }
            StoreError::Corrupt {
                path,
                line,
                message,
            } => write!(f, "store {} line {line}: {message}", path.display()),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// An open result store: the parsed records plus an append handle.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    appender: Option<JsonlAppender>,
    records: Vec<CellRecord>,
    hashes: BTreeSet<String>,
    has_header: bool,
    needs_newline: bool,
}

impl Store {
    /// Opens (or prepares to create) the store at `path`, repairing a torn
    /// final line by truncating it away.
    ///
    /// A missing file is an empty store; the file and its header appear on
    /// the first [`Store::append`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] for filesystem failures and
    /// [`StoreError::Corrupt`] for malformed content other than a torn
    /// final line.
    pub fn open(path: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let path = path.into();
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(&path, e)),
        };
        let text = String::from_utf8_lossy(&bytes);

        let mut records = Vec::new();
        let mut hashes = BTreeSet::new();
        let mut has_header = false;
        // Byte length of the longest valid prefix; everything past it is
        // the torn tail to truncate.
        let mut valid_len = 0usize;
        let mut offset = 0usize;
        for (idx, chunk) in text.split_inclusive('\n').enumerate() {
            let line_no = idx + 1;
            let end = offset + chunk.len();
            let is_last = end == text.len();
            let line = chunk.trim();
            if line.is_empty() {
                valid_len = end;
                offset = end;
                continue;
            }
            let json = match Json::parse(line) {
                Ok(json) => json,
                Err(_) if is_last => break, // torn final write; truncate below
                Err(e) => {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        line: line_no,
                        message: format!("unparseable JSON: {e}"),
                    })
                }
            };
            let kind = json.get("record").and_then(Json::as_str).unwrap_or("");
            if !has_header {
                let schema = json.get("schema").and_then(Json::as_u64);
                if kind != "sweep" || schema != Some(u64::from(STORE_SCHEMA_VERSION)) {
                    return Err(StoreError::Corrupt {
                        path: path.clone(),
                        line: line_no,
                        message: format!(
                            "expected header {{\"record\":\"sweep\",\"schema\":{STORE_SCHEMA_VERSION}}}, got `{line}`"
                        ),
                    });
                }
                has_header = true;
            } else if kind == "cell" {
                let record =
                    CellRecord::from_json(&json).map_err(|message| StoreError::Corrupt {
                        path: path.clone(),
                        line: line_no,
                        message,
                    })?;
                if hashes.insert(record.hash.clone()) {
                    records.push(record);
                }
            } else {
                return Err(StoreError::Corrupt {
                    path: path.clone(),
                    line: line_no,
                    message: format!("unknown record kind `{kind}`"),
                });
            }
            valid_len = end;
            offset = end;
        }

        if valid_len < bytes.len() {
            // Torn tail: cut the file back to the last intact record so the
            // fragment can never masquerade as mid-file corruption once we
            // append after it.
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            file.set_len(valid_len as u64)
                .map_err(|e| io_err(&path, e))?;
        }
        let needs_newline = valid_len > 0 && !text.as_bytes()[..valid_len].ends_with(b"\n");

        Ok(Store {
            path,
            appender: None,
            records,
            hashes,
            has_header,
            needs_newline,
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether a cell with this identity hash is already stored.
    pub fn contains(&self, hash: &str) -> bool {
        self.hashes.contains(hash)
    }

    /// All stored cells, in file order.
    pub fn records(&self) -> &[CellRecord] {
        &self.records
    }

    /// Appends one completed cell, flushing it to disk before returning.
    /// Appending a hash that is already stored is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the write fails.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), StoreError> {
        if self.hashes.contains(&record.hash) {
            return Ok(());
        }
        let path = self.path.clone();
        let path = path.as_path();
        if self.appender.is_none() {
            self.appender = Some(JsonlAppender::open(path).map_err(|e| io_err(path, e))?);
        }
        let appender = self.appender.as_mut().expect("appender just opened");
        if self.needs_newline {
            // The valid prefix ends without a newline (a write was cut
            // after the JSON but before the terminator); complete that
            // line before starting ours.
            appender.append_line("").map_err(|e| io_err(path, e))?;
            self.needs_newline = false;
        }
        if !self.has_header {
            let header = Json::Obj(vec![
                ("record".to_string(), Json::Str("sweep".to_string())),
                (
                    "schema".to_string(),
                    Json::Int(i128::from(STORE_SCHEMA_VERSION)),
                ),
            ]);
            appender.append(&header).map_err(|e| io_err(path, e))?;
            self.has_header = true;
        }
        appender
            .append(&record.to_json())
            .map_err(|e| io_err(path, e))?;
        self.hashes.insert(record.hash.clone());
        self.records.push(record.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Write;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dirsim-sweep-store-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn record(hash: &str, cpr: f64) -> CellRecord {
        CellRecord {
            hash: hash.to_string(),
            scheme: "Dir1NB".to_string(),
            scenario: "pops".to_string(),
            geometry: "infinite".to_string(),
            cpus: 4,
            refs: 1000,
            transactions: 31,
            distinct_blocks: 12,
            evictions: 0,
            miss_rate: 0.031,
            pipelined_cpr: cpr,
            non_pipelined_cpr: cpr * 2.0,
        }
    }

    #[test]
    fn roundtrips_and_skips_duplicate_hashes() {
        let path = temp_path("roundtrip");
        let mut store = Store::open(&path).unwrap();
        assert!(store.is_empty());
        store.append(&record("aa", 0.3)).unwrap();
        store.append(&record("bb", 0.4)).unwrap();
        store.append(&record("aa", 0.9)).unwrap(); // duplicate: no-op
        drop(store);

        let store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.contains("aa"));
        assert!(store.contains("bb"));
        assert_eq!(store.records()[0], record("aa", 0.3));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_truncated_and_append_resumes() {
        let path = temp_path("torn");
        let mut store = Store::open(&path).unwrap();
        store.append(&record("aa", 0.3)).unwrap();
        drop(store);
        let intact = fs::read(&path).unwrap();

        // Simulate a kill mid-write: half a record, no newline.
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"record\":\"cell\",\"hash\":\"b")
            .unwrap();
        drop(file);

        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 1, "torn line must not become a record");
        assert_eq!(
            fs::read(&path).unwrap(),
            intact,
            "repair truncates the tail"
        );
        store.append(&record("bb", 0.4)).unwrap();
        drop(store);

        let store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        let bytes = fs::read(&path).unwrap();
        assert!(
            bytes.starts_with(&intact),
            "repair must preserve the prefix"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_at_the_newline_boundary_keeps_the_record() {
        let path = temp_path("boundary");
        let mut store = Store::open(&path).unwrap();
        store.append(&record("aa", 0.3)).unwrap();
        store.append(&record("bb", 0.4)).unwrap();
        drop(store);

        // Cut exactly the trailing newline: the last record is intact JSON.
        let bytes = fs::read(&path).unwrap();
        let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(bytes.len() as u64 - 1).unwrap();
        drop(file);

        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 2, "intact JSON without newline still counts");
        store.append(&record("cc", 0.5)).unwrap();
        drop(store);

        let store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_repair() {
        let path = temp_path("midfile");
        let mut store = Store::open(&path).unwrap();
        store.append(&record("aa", 0.3)).unwrap();
        drop(store);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"not json\n");
        let json = record("bb", 0.4).to_json().to_string_compact();
        bytes.extend_from_slice(json.as_bytes());
        bytes.push(b'\n');
        fs::write(&path, &bytes).unwrap();

        let err = Store::open(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { line: 3, .. }),
            "unexpected: {err}"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_header_is_refused() {
        let path = temp_path("header");
        fs::write(&path, "{\"record\":\"sweep\",\"schema\":999}\n").unwrap();
        let err = Store::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { line: 1, .. }), "{err}");
        fs::remove_file(&path).unwrap();
    }
}
